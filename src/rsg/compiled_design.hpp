// Compile-once half of the compile-once/run-many split.
//
// A CompiledDesign holds everything about a design that does NOT depend on
// the parameter file: the sample layout's cell library and interface table,
// and the design program parsed to an AST. All of it is const after
// construction, so one CompiledDesign can back any number of concurrent
// GenerationSessions — each session overlays its own mutable tables on top
// (layout/cell_table.hpp, iface/interface_table.hpp) and never writes the
// base.
//
// The cell library can additionally be seeded from an RSGB snapshot
// (docs/formats/RSGB.md): the file is mapped read-only and imported before
// the sample text is parsed, so a pre-generated library is shared across
// workers without re-running the designs that produced it.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "iface/interface_table.hpp"
#include "io/sample_layout.hpp"
#include "io/snapshot.hpp"
#include "lang/parser.hpp"
#include "layout/cell_table.hpp"

namespace rsg {

struct CompileOptions {
  // Optional RSGB snapshot imported (read-only mmap) into the cell library
  // before the sample layout is parsed. Empty = none.
  std::string snapshot_path;
};

class CompiledDesign {
 public:
  // Parses `sample_text` into the immutable cell/interface tables and
  // `design_text` into the immutable program. Throws (LayoutError /
  // lang::ParseError / SnapshotError) on malformed input, so a returned
  // design is always runnable.
  static std::shared_ptr<const CompiledDesign> compile(const std::string& sample_text,
                                                       const std::string& design_text,
                                                       const CompileOptions& options = {});

  const CellTable& cells() const { return cells_; }
  const InterfaceTable& interfaces() const { return interfaces_; }
  const lang::Program& program() const { return program_; }
  const SampleLayoutStats& sample_stats() const { return sample_stats_; }
  const SnapshotReadResult* snapshot_stats() const {
    return has_snapshot_ ? &snapshot_stats_ : nullptr;
  }
  std::chrono::duration<double> compile_time() const { return compile_time_; }

  CompiledDesign(const CompiledDesign&) = delete;
  CompiledDesign& operator=(const CompiledDesign&) = delete;

 private:
  CompiledDesign() = default;

  CellTable cells_;
  InterfaceTable interfaces_;
  lang::Program program_;
  SampleLayoutStats sample_stats_;
  SnapshotReadResult snapshot_stats_;
  bool has_snapshot_ = false;
  std::chrono::duration<double> compile_time_{};
};

}  // namespace rsg
