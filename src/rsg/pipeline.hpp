// Shared run-phase core of the RSG pipeline (Figure 1.1 / Figure 3.1).
//
// Both front doors — the legacy one-shot rsg::Generator and the
// compile-once/run-many rsg::GenerationSession — funnel into
// detail::execute_generation, so a session run is byte-identical to a
// legacy run by construction: same interpreter, same top-cell selection,
// same compaction hand-off, same CIF writer, in the same order.
//
// The request/result structs live here (not generator.hpp) so session and
// serve layers can use them without pulling in the legacy driver;
// generator.hpp includes this header, which keeps every existing
// `#include "rsg/generator.hpp"` user source-compatible.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "compact/design_rule_table.hpp"
#include "compact/flat_compactor.hpp"
#include "compact/xy_schedule.hpp"
#include "graph/connectivity_graph.hpp"
#include "iface/interface_table.hpp"
#include "io/param_file.hpp"
#include "io/sample_layout.hpp"
#include "lang/interp.hpp"
#include "layout/cell_table.hpp"
#include "support/cancel.hpp"

namespace rsg {

// Post-generation compaction (§6.4 wired into the Figure 1.1 driver): after
// the design file has assembled the top cell, flatten it, run the
// alternating x/y schedule, and emit the compacted geometry as the output
// layout. Requested programmatically via set_compaction or from the
// parameter file with the directive `.compact:xy`.
struct CompactionRequest {
  // Best effort by default: a generated layout that violates the rule
  // table on one axis still compacts on the other (the skip is recorded in
  // GeneratorResult::compaction).
  static compact::XyScheduleOptions default_schedule() {
    compact::XyScheduleOptions options;
    options.best_effort = true;
    return options;
  }

  bool enabled = false;
  compact::CompactionRules rules;  // defaults to the MOSIS lambda table
  compact::FlatOptions flat;
  compact::XyScheduleOptions schedule = default_schedule();
  // Boxes on these layers may shrink to minimum width (buses); all other
  // boxes stay rigid (devices).
  std::vector<Layer> stretchable_layers;
  // RSGC checkpointing (io/checkpoint.hpp): `checkpoint_out` rewrites the
  // file after every completed schedule round; `checkpoint_in` resumes the
  // schedule from such a file instead of starting at round 1. The resumed
  // geometry is bit-for-bit the uninterrupted run's. Exposed on rsg_cli as
  // --checkpoint-out / --checkpoint-in.
  std::string checkpoint_in;
  std::string checkpoint_out;
};

struct PhaseTimes {
  std::chrono::duration<double> read_sample{};
  std::chrono::duration<double> execute_design{};
  std::chrono::duration<double> write_output{};
  std::chrono::duration<double> total() const {
    return read_sample + execute_design + write_output;
  }
};

struct GeneratorResult {
  // The generated layout. The pointer targets a cell table retained by
  // `keepalive`, so the result stays valid after the Generator or
  // GenerationSession that produced it is destroyed.
  const Cell* top = nullptr;
  std::string output;                  // CIF text (also written to file if requested)
  PhaseTimes times;
  SampleLayoutStats sample_stats;
  lang::Interpreter::Stats interp_stats;
  std::size_t interface_lookups = 0;
  // Filled when post-generation compaction ran (see CompactionRequest);
  // `top` then points at the compacted flat cell.
  bool compacted = false;
  compact::XyScheduleResult compaction;
  // Owns the state `top` points into (the producer's cell table and, for
  // sessions, the compiled design underneath it). Opaque on purpose:
  // holders only need the lifetime, not the type.
  std::shared_ptr<const void> keepalive;
};

namespace detail {

// Phases 2–3 of the pipeline: run the parameter-file environment + design
// program against the given tables, pick the top cell, optionally compact,
// and render CIF. Phase 1 (sample loading) is the caller's job — the legacy
// Generator does it per run, CompiledDesign once at compile time. The
// caller also stamps result.sample_stats / times.read_sample / keepalive.
//
// `cancel` (optional) is polled at every phase boundary — before the design
// program runs, before compaction, between compaction rounds (via
// XyScheduleOptions::cancel), and before output rendering — and unwinds
// with StatusError(DEADLINE_EXCEEDED | CANCELLED) when it fires.
GeneratorResult execute_generation(CellTable& cells, InterfaceTable& interfaces,
                                   ConnectivityGraph& graph, const lang::Program& program,
                                   const ParameterFile& params, const std::string& top_cell,
                                   const lang::Interpreter::EncodingTable* encoding,
                                   const CompactionRequest& base_request,
                                   const CancelToken* cancel = nullptr);

}  // namespace detail

// Resolves a data file shipped in the repository's designs/ directory.
std::string designs_path(const std::string& filename);

}  // namespace rsg
