#include "rsg/session.hpp"

#include "support/error.hpp"

namespace rsg {

GenerationSession::GenerationSession(std::shared_ptr<const CompiledDesign> design) {
  if (design == nullptr) throw Error("GenerationSession: null compiled design");
  state_ = std::make_shared<State>(std::move(design));
}

GeneratorResult GenerationSession::generate(const std::string& param_text,
                                            const std::string& top_cell) {
  const ParameterFile params = ParameterFile::parse(param_text);
  GeneratorResult result =
      detail::execute_generation(state_->cells, state_->interfaces, state_->graph,
                                 state_->design->program(), params, top_cell, encoding_,
                                 compaction_, &cancel_);
  // Sample loading happened once at compile time; surface its stats so
  // callers see the same fields a legacy run reports. read_sample stays
  // zero — the session didn't pay it.
  result.sample_stats = state_->design->sample_stats();
  result.keepalive = state_;
  return result;
}

}  // namespace rsg
