// Thread-safe LRU result cache for the serving layer.
//
// rsg_serve keys it on (design, params, top, truth table) and stores the
// finished response — CIF text, not cell pointers — so cached entries are
// self-contained and survive the GenerationSession that produced them.
// Intrusive doubly-linked recency list + unordered_map index: get/put are
// O(1) plus hashing, under one mutex (serving is generation-bound; the
// cache is nowhere near the bottleneck).
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace rsg {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
  };

  // capacity 0 disables the cache entirely: get() always misses, put() is a
  // no-op. (rsg_serve --cache-size=0 and the benchmark's cache-off arm.)
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::optional<Value> get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);  // move to front
    return it->second->value;
  }

  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.push_front(Entry{key, std::move(value)});
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
      ++stats_.evictions;
    }
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.size = entries_.size();
    return s;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Key key;
    Value value;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  Stats stats_;
};

}  // namespace rsg
