// The hardening stack: fault-injection registry semantics, crash-safe
// (temp → fsync → rename) persistence under injected failures, deadline
// propagation and cooperative cancellation through the pipeline, ServeCore
// admission control and drain/abort shutdown, the retrying socket client,
// and the SIGTERM drain path. Every registered fault point in
// support/fault_injection.hpp is armed by some test here.
#include "support/fault_injection.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "compact/synth_design.hpp"
#include "compact/xy_schedule.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "io/cif_writer.hpp"
#include "io/snapshot.hpp"
#include "rsg/pipeline.hpp"
#include "rsg/serve_core.hpp"
#include "rsg/serve_socket.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/status.hpp"

namespace rsg {
namespace {

using compact::CompactionRules;
using compact::SynthField;
using compact::XyCheckpoint;
using compact::XyScheduleOptions;
using compact::XyScheduleResult;
using compact::compact_flat_schedule;
using compact::make_random_field;

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
  }
  return names;
}

// Every test leaves the global registry clean even on failure.
class FaultInjectionTest : public testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Registry semantics

TEST_F(FaultInjectionTest, SkipCountWindowAndParam) {
  fault::arm("test.window", {/*skip=*/2, /*count=*/2, /*param=*/7});
  int param = 0;
  EXPECT_FALSE(fault::fired("test.window", &param));  // skip 1
  EXPECT_FALSE(fault::fired("test.window", &param));  // skip 2
  EXPECT_TRUE(fault::fired("test.window", &param));   // fire 1
  EXPECT_EQ(param, 7);
  EXPECT_TRUE(fault::fired("test.window"));   // fire 2
  EXPECT_FALSE(fault::fired("test.window"));  // window exhausted
  EXPECT_EQ(fault::fire_count("test.window"), 2);

  // count < 0 fires forever; re-arming resets the seen counter.
  fault::arm("test.window", {/*skip=*/0, /*count=*/-1});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(fault::fired("test.window"));
  fault::disarm("test.window");
  EXPECT_FALSE(fault::fired("test.window"));
}

TEST_F(FaultInjectionTest, UnarmedPointsNeverFire) {
  EXPECT_FALSE(fault::fired("test.never_armed"));
  EXPECT_EQ(fault::fire_count("test.never_armed"), 0);
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnScopeExit) {
  {
    fault::ScopedFault guard("test.scoped", {/*skip=*/0, /*count=*/-1});
    EXPECT_TRUE(fault::fired("test.scoped"));
    EXPECT_EQ(guard.fire_count(), 1);
  }
  EXPECT_FALSE(fault::fired("test.scoped"));
}

TEST_F(FaultInjectionTest, EnvSpecGrammar) {
  // The RSG_FAULT_INJECT grammar: name[=skip[:count[:param]]], comma-joined.
  EXPECT_EQ(fault::arm_from_spec("test.a=1:2:9,test.b,test.c=3"), 3);
  EXPECT_FALSE(fault::fired("test.a"));  // skip 1
  int param = 0;
  EXPECT_TRUE(fault::fired("test.a", &param));
  EXPECT_EQ(param, 9);
  EXPECT_TRUE(fault::fired("test.b"));   // bare name = default spec, fires once
  EXPECT_FALSE(fault::fired("test.b"));
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fault::fired("test.c")) << i;  // skip=3, count=1
  EXPECT_TRUE(fault::fired("test.c"));
  EXPECT_EQ(fault::arm_from_spec(""), 0);
}

// ---------------------------------------------------------------------------
// Crash-safe persistence: temp → fsync → rename

TEST_F(FaultInjectionTest, AtomicWriteCommitsOrLeavesNoTrace) {
  const std::string path = testing::TempDir() + "rsg_atomic_basic.bin";
  const std::string temp = atomic_write_temp_path(path);
  std::remove(path.c_str());

  atomic_write_file(path, [](std::ostream& out) { out << "generation 1"; });
  EXPECT_EQ(read_file_bytes(path), "generation 1");
  EXPECT_FALSE(file_exists(temp));

  // A writer that throws must not disturb the committed generation.
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& out) {
                                   out << "torn";
                                   throw Error("disk on fire");
                                 }),
               Error);
  EXPECT_EQ(read_file_bytes(path), "generation 1");
  EXPECT_FALSE(file_exists(temp));
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, AtomicWriteRenameFailureKeepsPriorFile) {
  const std::string path = testing::TempDir() + "rsg_atomic_rename.bin";
  const std::string temp = atomic_write_temp_path(path);
  atomic_write_file(path, [](std::ostream& out) { out << "good"; });

  fault::ScopedFault guard("atomic_file.rename_fail");
  EXPECT_THROW(atomic_write_file(path, [](std::ostream& out) { out << "replacement"; }),
               Error);
  EXPECT_EQ(guard.fire_count(), 1);
  // The failed attempt is invisible: prior content intact, temp removed.
  EXPECT_EQ(read_file_bytes(path), "good");
  EXPECT_FALSE(file_exists(temp));
  std::remove(path.c_str());
}

CellTable two_cell_table() {
  CellTable cells;
  Cell& unit = cells.create("unit");
  unit.add_box(Layer::kMetal1, Box(0, 0, 4, 2));
  Cell& top = cells.create("top");
  top.add_instance(&unit, Placement{{10, 0}, Orientation::kNorth}, "u0");
  return cells;
}

TEST_F(FaultInjectionTest, SnapshotWriteFailureNeverLeavesPartialFile) {
  const std::string path = testing::TempDir() + "rsg_fault_snapshot.rsgb";
  const CellTable cells = two_cell_table();
  write_snapshot_file(path, cells, "top");
  const std::string good = read_file_bytes(path);
  ASSERT_FALSE(good.empty());

  fault::ScopedFault guard("snapshot.write_payload", {/*skip=*/0, /*count=*/-1});
  EXPECT_THROW(write_snapshot_file(path, cells, "top"), Error);
  EXPECT_GE(guard.fire_count(), 1);
  // The destination still holds the intact previous snapshot and no temp
  // residue exists — a reader can never observe a half-written file.
  EXPECT_EQ(read_file_bytes(path), good);
  EXPECT_FALSE(file_exists(atomic_write_temp_path(path)));
  std::remove(path.c_str());
}

XyCheckpoint completed_checkpoint() {
  const SynthField field = make_random_field(23, 25);
  XyScheduleOptions schedule;
  schedule.max_rounds = 3;
  schedule.stop_when_converged = false;
  XyCheckpoint last;
  schedule.checkpoint_sink = [&](const XyCheckpoint& ck) { last = ck; };
  compact_flat_schedule(field.boxes, CompactionRules::mosis(), {}, schedule,
                        field.stretchable);
  return last;
}

TEST_F(FaultInjectionTest, CheckpointWriteFailureNeverLeavesPartialFile) {
  const std::string path = testing::TempDir() + "rsg_fault_checkpoint.rsgc";
  const XyCheckpoint checkpoint = completed_checkpoint();
  write_compaction_checkpoint_file(path, checkpoint);
  const std::string good = read_file_bytes(path);
  ASSERT_FALSE(good.empty());

  {
    fault::ScopedFault guard("checkpoint.write_payload", {/*skip=*/0, /*count=*/-1});
    EXPECT_THROW(write_compaction_checkpoint_file(path, checkpoint), Error);
    EXPECT_GE(guard.fire_count(), 1);
    EXPECT_EQ(read_file_bytes(path), good);
    EXPECT_FALSE(file_exists(atomic_write_temp_path(path)));
  }

  // Disarmed, the same call succeeds and the file still reads back whole.
  write_compaction_checkpoint_file(path, checkpoint);
  const XyCheckpoint restored = read_compaction_checkpoint_file(path);
  EXPECT_EQ(restored.rounds_done, checkpoint.rounds_done);
  EXPECT_EQ(restored.boxes, checkpoint.boxes);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, StreamWriterFlushFailureSurfacesAsError) {
  const std::string path = testing::TempDir() + "rsg_fault_flush.cif";
  CellTable cells;
  Cell& cell = cells.create("leaf");
  cell.add_box(Layer::kMetal1, Box(0, 0, 8, 8));

  fault::ScopedFault guard("stream_writer.flush_fail", {/*skip=*/0, /*count=*/-1});
  EXPECT_THROW(write_cif_file(path, cell), Error);
  EXPECT_GE(guard.fire_count(), 1);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Deadlines and cooperative cancellation

// A tiny design whose top compacts: a row of bricks with a connection chain
// (borrowed from the checkpoint tests — known to run multiple x/y rounds).
constexpr const char* kRowSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
constexpr const char* kRowDesign = R"(
(macro mrow (n)
  (locals foo)
  (do (i 1 (+ i 1) (> i n))
      (mk_instance b.i brick)
      (cond ((> i 1) (connect b.(- i 1) b.i 1)))))
(assign r (mrow n))
(mk_cell "row" (subcell r b.1))
)";

TEST_F(FaultInjectionTest, CancelTokenSemantics) {
  const CancelToken never;  // default token never fires
  EXPECT_FALSE(never.stop_requested());
  never.check("anywhere");

  const CancelToken expired = CancelToken::after(std::chrono::milliseconds(0));
  EXPECT_TRUE(expired.deadline_expired());
  try {
    expired.check("unit test");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("unit test"), std::string::npos);
  }

  // An explicit cancel beats an expired deadline: CANCELLED is the verdict.
  CancelSource source;
  const CancelToken both = source.token_with_deadline(CancelToken::Clock::now());
  source.cancel();
  try {
    both.check("tie");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
}

TEST_F(FaultInjectionTest, ScheduleDeadlineAbandonsBetweenRoundsLeavingResumableState) {
  const SynthField field = make_random_field(17, 30);

  // Reference: the uninterrupted schedule.
  XyScheduleOptions full_options;
  full_options.max_rounds = 4;
  full_options.stop_when_converged = false;
  const XyScheduleResult full = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, full_options, field.stretchable);
  ASSERT_GT(full.rounds, 1);

  // Interrupted run: the round stall pushes past the deadline after round 1,
  // so the boundary poll throws — AFTER the checkpoint sink saw round 1.
  fault::arm("xy_schedule.round_stall", {/*skip=*/0, /*count=*/-1, /*param=*/300});
  XyScheduleOptions interrupted;
  interrupted.max_rounds = 4;
  interrupted.stop_when_converged = false;
  std::vector<XyCheckpoint> checkpoints;
  interrupted.checkpoint_sink = [&](const XyCheckpoint& ck) { checkpoints.push_back(ck); };
  const CancelToken deadline = CancelToken::after(std::chrono::milliseconds(150));
  interrupted.cancel = &deadline;
  try {
    compact_flat_schedule(field.boxes, CompactionRules::mosis(), {}, interrupted,
                          field.stretchable);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }
  fault::disarm("xy_schedule.round_stall");
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints.back().rounds_done, 1);

  // Resuming from the abandoned run's last checkpoint reproduces the
  // uninterrupted run bit-for-bit.
  XyScheduleOptions resume_options;
  resume_options.max_rounds = 4;
  resume_options.stop_when_converged = false;
  resume_options.resume = &checkpoints.back();
  const XyScheduleResult resumed = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, resume_options, field.stretchable);
  EXPECT_EQ(resumed.boxes, full.boxes);
  EXPECT_EQ(resumed.rounds, full.rounds);
  EXPECT_EQ(resumed.width_after, full.width_after);
  EXPECT_EQ(resumed.height_after, full.height_after);
}

TEST_F(FaultInjectionTest, ExpiredTokenRejectsGenerationBeforeAnyWork) {
  GenerationSession session(CompiledDesign::compile(kRowSample, kRowDesign));
  session.set_cancel_token(CancelToken::after(std::chrono::milliseconds(0)));
  try {
    session.generate("n = 2");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("generation start"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// ServeCore: deadlines, admission control, shutdown

ServeOptions row_core_options(std::size_t threads) {
  ServeOptions options;
  options.num_threads = threads;
  options.cache_capacity = 0;  // every request generates
  return options;
}

GenerateRequest row_request() {
  GenerateRequest request;
  request.design = "row";
  request.params = "n = 6";
  request.compact = true;
  return request;
}

void add_row(ServeCore& core) { core.add_design("row", kRowSample, kRowDesign); }

TEST_F(FaultInjectionTest, DeadlineExpiredInQueueRejectsWithoutRunningPipeline) {
  ServeCore core(row_core_options(1));
  add_row(core);
  // The worker stalls past the request's deadline before looking at it.
  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/150});
  GenerateRequest request = row_request();
  request.deadline_ms = 30;
  const GenerateResponse response = core.submit(request).get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.cif.empty());  // the pipeline never ran
  EXPECT_NE(response.error.find("queued"), std::string::npos);
  const ServeCore::Stats stats = core.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST_F(FaultInjectionTest, DeadlineMidCompactionLeavesCheckpointAndResumesBitForBit) {
  const std::string dir = testing::TempDir() + "rsg_fault_ckpt_dir";
  ::mkdir(dir.c_str(), 0755);
  for (const std::string& name : list_dir(dir)) std::remove((dir + "/" + name).c_str());

  // Reference: the same request on a core with no checkpointing at all.
  std::string expected_cif;
  {
    ServeCore reference(row_core_options(1));
    add_row(reference);
    const GenerateResponse response = reference.handle(row_request());
    ASSERT_TRUE(response.ok) << response.error;
    expected_cif = response.cif;
  }

  ServeOptions options = row_core_options(1);
  options.checkpoint_dir = dir;
  ServeCore core(options);
  add_row(core);

  // Run 1: the round stall pushes past the deadline after compaction round
  // 1 — the request fails DEADLINE_EXCEEDED but its checkpoint survives.
  fault::arm("xy_schedule.round_stall", {/*skip=*/0, /*count=*/-1, /*param=*/500});
  GenerateRequest request = row_request();
  request.deadline_ms = 300;
  const GenerateResponse aborted = core.handle(request);
  fault::disarm("xy_schedule.round_stall");
  ASSERT_FALSE(aborted.ok);
  EXPECT_EQ(aborted.code, StatusCode::kDeadlineExceeded);

  const std::vector<std::string> left_behind = list_dir(dir);
  ASSERT_EQ(left_behind.size(), 1u) << "expected exactly the interrupted run's checkpoint";
  const std::string checkpoint_path = dir + "/" + left_behind.front();
  const XyCheckpoint checkpoint = read_compaction_checkpoint_file(checkpoint_path);
  EXPECT_GE(checkpoint.rounds_done, 1);

  // Run 2 (same request personality, fresh deadline): resumes from the
  // checkpoint, matches the never-interrupted output, and cleans up.
  request.deadline_ms = 0;
  const GenerateResponse resumed = core.handle(request);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.cif, expected_cif);
  EXPECT_TRUE(list_dir(dir).empty()) << "completed run must remove its checkpoint";
  ::rmdir(dir.c_str());
}

TEST_F(FaultInjectionTest, FullQueueShedsWithResourceExhausted) {
  ServeOptions options = row_core_options(1);
  options.max_queue_depth = 1;
  ServeCore core(options);
  add_row(core);

  // Hold the single worker so the queue backs up deterministically: wait
  // until the stall has FIRED (the worker has dequeued the first request).
  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/400});
  std::future<GenerateResponse> first = core.submit(row_request());
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fault::fire_count("serve_core.worker_stall") < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "worker never dequeued";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::future<GenerateResponse> queued = core.submit(row_request());   // fills the queue
  std::future<GenerateResponse> shed = core.submit(row_request());     // over capacity
  const GenerateResponse shed_response = shed.get();  // resolves immediately
  EXPECT_FALSE(shed_response.ok);
  EXPECT_EQ(shed_response.code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(status_code_retryable(shed_response.code));

  const GenerateResponse first_response = first.get();
  const GenerateResponse queued_response = queued.get();
  EXPECT_TRUE(first_response.ok) << first_response.error;
  EXPECT_TRUE(queued_response.ok) << queued_response.error;
  EXPECT_EQ(core.stats().shed, 1u);
}

TEST_F(FaultInjectionTest, AllocFailureMapsToResourceExhausted) {
  ServeCore core(row_core_options(1));
  add_row(core);
  fault::ScopedFault guard("serve_core.alloc_fail", {/*skip=*/0, /*count=*/1});
  const GenerateResponse response = core.handle(row_request());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
  // Retryable by contract — and the retry succeeds once the pressure clears.
  EXPECT_TRUE(status_code_retryable(response.code));
  const GenerateResponse retried = core.handle(row_request());
  EXPECT_TRUE(retried.ok) << retried.error;
}

TEST_F(FaultInjectionTest, StopDrainCompletesEverythingAccepted) {
  ServeCore core(row_core_options(1));
  add_row(core);
  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/100});
  std::vector<std::future<GenerateResponse>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(core.submit(row_request()));
  core.stop(DrainMode::kDrain);
  for (auto& future : futures) {
    const GenerateResponse response = future.get();
    EXPECT_TRUE(response.ok) << response.error;
  }
  // After stop, new submissions fail fast with UNAVAILABLE.
  const GenerateResponse late = core.submit(row_request()).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.code, StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, StopAbortFailsQueuedCleanlyAndCancelsInFlight) {
  ServeCore core(row_core_options(1));
  add_row(core);

  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/300});
  std::future<GenerateResponse> in_flight = core.submit(row_request());
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fault::fire_count("serve_core.worker_stall") < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "worker never dequeued";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::future<GenerateResponse> queued_a = core.submit(row_request());
  std::future<GenerateResponse> queued_b = core.submit(row_request());

  core.stop(DrainMode::kAbort);  // returns only once the workers exited

  // Queued-but-unstarted: clean UNAVAILABLE, never a hang.
  for (std::future<GenerateResponse>* future : {&queued_a, &queued_b}) {
    ASSERT_EQ(future->wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const GenerateResponse response = future->get();
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, StatusCode::kUnavailable);
  }
  // In-flight: cancelled at its next boundary (the stall outlives stop()'s
  // cancel signal, so the generation-start poll sees it).
  ASSERT_EQ(in_flight.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const GenerateResponse cancelled = in_flight.get();
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.code, StatusCode::kCancelled);
  EXPECT_GE(core.stats().cancelled, 3u);
}

// ---------------------------------------------------------------------------
// Socket client retry and SIGTERM drain

TEST_F(FaultInjectionTest, ShedClientsBackOffAndEventuallySucceed) {
  ServeOptions options = row_core_options(1);
  options.max_queue_depth = 1;
  ServeCore core(options);
  add_row(core);
  const std::string socket_path = testing::TempDir() + "rsg_fault_retry.sock";
  std::remove(socket_path.c_str());
  SocketServer server(core, socket_path);
  server.start();

  // One slow dequeue at the start funnels the other clients into sheds;
  // their backoff retries land once the queue drains.
  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/150});
  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_ms = 5.0;
  std::vector<std::thread> clients;
  std::vector<GenerateResponse> responses(3);
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          send_generate_request_with_retry(socket_path, row_request(), policy);
    });
  }
  for (std::thread& client : clients) client.join();
  for (const GenerateResponse& response : responses) {
    EXPECT_TRUE(response.ok) << status_code_name(response.code) << ": " << response.error;
  }
  server.stop();
}

TEST_F(FaultInjectionTest, SigtermDrainsAcceptedWorkThenStops) {
  // The drain watcher must outrank every serving thread: a process-directed
  // SIGTERM lands on whichever thread has it unblocked, so the SignalDrain
  // (which blocks it process-wide) is constructed BEFORE the core's workers.
  std::atomic<SocketServer*> server_ptr{nullptr};
  SignalDrain drain([&server_ptr] {
    if (SocketServer* server = server_ptr.load()) server->request_shutdown();
  });

  ServeCore core(row_core_options(1));
  add_row(core);
  const std::string socket_path = testing::TempDir() + "rsg_fault_sigterm.sock";
  std::remove(socket_path.c_str());
  SocketServer server(core, socket_path);
  server_ptr.store(&server);
  server.start();

  // Work accepted before the signal...
  fault::arm("serve_core.worker_stall", {/*skip=*/0, /*count=*/1, /*param=*/100});
  std::future<GenerateResponse> accepted = core.submit(row_request());

  // ...then a process-directed SIGTERM (what systemd/docker send). The
  // sigwait thread consumes it and begins the drain.
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  server.wait();  // returns because the drain shut the accept loop down
  EXPECT_TRUE(drain.fired());
  server.stop();
  core.stop(DrainMode::kDrain);

  // Drain semantics: the accepted request still completed.
  const GenerateResponse response = accepted.get();
  EXPECT_TRUE(response.ok) << response.error;
}

// ---------------------------------------------------------------------------
// Status plumbing

TEST_F(FaultInjectionTest, StatusCodeNamesAndRetryability) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_FALSE(status_code_retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(status_code_retryable(StatusCode::kInternal));
  EXPECT_TRUE(status_code_retryable(StatusCode::kUnavailable));

  const Status status(StatusCode::kDeadlineExceeded, "round 3");
  EXPECT_EQ(status.to_string(), "DEADLINE_EXCEEDED: round 3");
  const StatusError error(status);
  EXPECT_EQ(error.code(), StatusCode::kDeadlineExceeded);

  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status(StatusCode::kNotFound, "no such design"));
  ASSERT_FALSE(bad.ok());
  EXPECT_THROW(bad.value(), StatusError);
}

}  // namespace
}  // namespace rsg
