// Equivalence and behavior tests for the incremental x/y compaction engine
// (compact/incremental.hpp): scratch-vs-incremental byte identity of the
// constraint stream and the final geometry across 200+ seeded fields, the
// dirty-band locality contract (a single moved box re-sweeps exactly the
// bands its shadow window touches), warm-start exactness for both worklist
// solvers, the full-rebuild escape hatch, and the both-axes-infeasible
// early termination of the schedule.
#include "compact/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "compact/synth_design.hpp"
#include "compact/xy_schedule.hpp"
#include "layout/flatten.hpp"
#include "pla/pla_builder.hpp"
#include "pla/truth_table.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

std::vector<SynthField> identity_fields() {
  std::vector<SynthField> fields;
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    fields.push_back(make_random_field(seed, 4 + static_cast<int>(seed % 40)));
  }
  fields.push_back(make_grid_field(6, 7));
  fields.push_back(make_grid_field(1, 30));
  fields.push_back(make_pla_field(8, 10));
  fields.push_back(make_pla_field(3, 25));
  return fields;
}

TEST(Incremental, ScratchVsIncrementalByteIdentityOnSeededFields) {
  // The tentpole contract: over a multi-round schedule the incremental
  // engine must reproduce the scratch schedule's geometry exactly, and in
  // check mode it proves the CONSTRAINT STREAM of every pass byte-identical
  // to a from-scratch generation (the check throws on any divergence).
  XyScheduleOptions scratch_options;
  scratch_options.max_rounds = 3;
  scratch_options.stop_when_converged = false;
  scratch_options.incremental = false;

  XyScheduleOptions incremental_options = scratch_options;
  incremental_options.incremental = true;
  incremental_options.incremental_options.bands = 4;
  incremental_options.incremental_options.check_byte_identity = true;

  std::uint32_t seed = 0;
  for (const SynthField& field : identity_fields()) {
    const XyScheduleResult scratch = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, scratch_options, field.stretchable);
    const XyScheduleResult incremental = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, incremental_options, field.stretchable);
    ASSERT_EQ(scratch.boxes, incremental.boxes) << "seed " << seed;
    ASSERT_EQ(scratch.width_after, incremental.width_after) << "seed " << seed;
    ASSERT_EQ(scratch.height_after, incremental.height_after) << "seed " << seed;
    ASSERT_EQ(scratch.rounds, incremental.rounds) << "seed " << seed;
    ++seed;
  }
}

TEST(Incremental, LateRoundsRepriseCleanBandsAndWarmStarts) {
  // On a field that keeps converging, the late rounds of the incremental
  // schedule must actually reuse: partner entries spliced from clean bands
  // and warm-started solves with zero worklist pops.
  const SynthField field = make_grid_field(12, 12);
  XyScheduleOptions options;
  options.max_rounds = 8;
  options.stop_when_converged = false;
  options.incremental_options.bands = 4;
  const XyScheduleResult result = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, options, field.stretchable);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(static_cast<int>(result.round_stats.size()), result.rounds);
  const RoundStats& last = result.round_stats.back();
  EXPECT_EQ(last.partners_reswept, 0u);
  EXPECT_GT(last.partners_reused, 0u);
  EXPECT_EQ(last.solve_pops, 0u);
  EXPECT_TRUE(last.warm_x);
  EXPECT_TRUE(last.warm_y);
}

TEST(Incremental, SingleMovedBoxDirtiesItsBandAndSpacingNeighbors) {
  // Dirty detection is windowed: moving one box must re-sweep exactly the
  // bands its y extent + shadow margin overlaps — its own band plus the
  // spacing-radius neighbors — and nothing else.
  std::vector<LayerBox> boxes;
  for (int i = 0; i < 32; ++i) {
    boxes.push_back({Layer::kMetal1, Box(0, i * 40, 8, i * 40 + 8)});
    boxes.push_back({Layer::kMetal1, Box(20, i * 40, 28, i * 40 + 8)});
  }
  IncrementalOptions inc;
  inc.bands = 8;
  inc.check_byte_identity = true;
  IncrementalCompactor engine(CompactionRules::mosis(), {}, inc);
  const FlatResult first = engine.compact_x(boxes);
  ASSERT_TRUE(engine.x_stats().full_build);
  // Stabilize: shard hashes describe each pass's INPUT geometry, so run
  // once more on the compacted output to make the stored state current.
  const FlatResult stable = engine.compact_x(first.boxes);
  ASSERT_EQ(stable.boxes, first.boxes);

  // Move one mid-stack box right; x movement keeps its y window unchanged.
  std::vector<LayerBox> moved = stable.boxes;
  const std::size_t victim = 33;  // second box of row 16
  moved[victim].box = moved[victim].box.translated({5, 0});

  const FlatResult second = engine.compact_x(moved);
  const IncrementalPassStats& stats = engine.x_stats();
  EXPECT_FALSE(stats.full_build);
  EXPECT_GT(stats.shards_reswept, 0);
  EXPECT_LT(stats.shards_reswept, stats.shards_total);

  // Expected dirty bands: those overlapping the victim's widest shadow
  // window over any profile layer it participates in.
  Coord max_margin = 0;
  CompactionBox victim_box;
  victim_box.geometry = moved[victim];
  for (int li = 0; li < kNumLayers; ++li) {
    Coord y0 = 0;
    Coord y1 = 0;
    if (layer_window(victim_box, li, CompactionRules::mosis(), y0, y1)) {
      max_margin = std::max(max_margin, moved[victim].box.lo.y - y0);
    }
  }
  const Coord y0 = moved[victim].box.lo.y - max_margin;
  const Coord y1 = moved[victim].box.hi.y + max_margin;
  const std::vector<Coord>& cuts = engine.x_band_cuts();
  std::vector<int> expected;
  for (std::size_t b = 0; b + 1 < cuts.size(); ++b) {
    if (cuts[b] < y1 && cuts[b + 1] > y0) expected.push_back(static_cast<int>(b));
  }
  EXPECT_EQ(stats.dirty_bands, expected);

  // And the spliced pass still equals a scratch compaction of the moved
  // geometry.
  const FlatResult scratch = compact_flat(moved, CompactionRules::mosis());
  EXPECT_EQ(second.boxes, scratch.boxes);
}

TEST(Incremental, FullRebuildEscapeHatchStaysExact) {
  const SynthField field = make_random_field(7, 25);
  IncrementalOptions inc;
  inc.bands = 4;
  inc.full_rebuild = true;
  IncrementalCompactor engine(CompactionRules::mosis(), {}, inc, field.stretchable);
  const FlatResult first = engine.compact_x(field.boxes);
  const FlatResult again = engine.compact_x(first.boxes);
  // Every shard is re-swept every pass under the escape hatch.
  EXPECT_EQ(engine.x_stats().shards_reswept, engine.x_stats().shards_total);
  EXPECT_EQ(engine.x_stats().partners_reused, 0u);
  const FlatResult scratch = compact_flat(first.boxes, CompactionRules::mosis(), {},
                                          field.stretchable);
  EXPECT_EQ(again.boxes, scratch.boxes);
}

TEST(Incremental, FullRebuildUnderByteIdentityCheckAcrossBothAxes) {
  // The two escape hatches composed, over a moving multi-pass sequence on
  // BOTH axes: full_rebuild must re-sweep every shard every pass (never
  // splice), check_byte_identity must stay silent on correct state, and
  // the geometry must equal the scratch compactors' exactly.
  const SynthField field = make_random_field(11, 30);
  IncrementalOptions inc;
  inc.bands = 4;
  inc.full_rebuild = true;
  inc.check_byte_identity = true;
  IncrementalCompactor engine(CompactionRules::mosis(), {}, inc, field.stretchable);
  std::vector<LayerBox> boxes = field.boxes;
  for (int pass = 0; pass < 3; ++pass) {
    const FlatResult x = engine.compact_x(boxes);
    EXPECT_EQ(engine.x_stats().shards_reswept, engine.x_stats().shards_total)
        << "pass " << pass;
    EXPECT_EQ(engine.x_stats().partners_reused, 0u) << "pass " << pass;
    const FlatResult x_scratch = compact_flat(boxes, CompactionRules::mosis(), {},
                                              field.stretchable);
    ASSERT_EQ(x.boxes, x_scratch.boxes) << "pass " << pass;
    const FlatResult y = engine.compact_y(x.boxes);
    EXPECT_EQ(engine.y_stats().shards_reswept, engine.y_stats().shards_total)
        << "pass " << pass;
    EXPECT_EQ(engine.y_stats().partners_reused, 0u) << "pass " << pass;
    const FlatResult y_scratch = compact_flat_y(x.boxes, CompactionRules::mosis(), {},
                                                field.stretchable);
    ASSERT_EQ(y.boxes, y_scratch.boxes) << "pass " << pass;
    boxes = y.boxes;
  }
}

TEST(Incremental, CheckByteIdentityThrowsOnCorruptedState) {
  // The error path of the diagnostic mode, executed via fault injection
  // (the engine is byte-identical by construction, so the only way to see
  // the check FIRE is to corrupt its cached state): an all-clean pass
  // reuses the corrupted cache, the scratch comparison diverges, and the
  // distinct IncrementalDivergence type must come out — it is what lets
  // the best-effort schedule treat an engine bug as fatal while still
  // skipping genuinely infeasible axes.
  const SynthField field = make_random_field(3, 20);
  IncrementalOptions inc;
  inc.bands = 4;
  inc.check_byte_identity = true;
  IncrementalCompactor engine(CompactionRules::mosis(), {}, inc, field.stretchable);
  // No cached system before the first pass: the hook itself refuses.
  EXPECT_THROW(engine.corrupt_cached_system_for_testing(false), Error);
  // Converge each axis first — a pass is not idempotent in general (moved
  // boxes change the visibility partners), and the cached system is only
  // REUSED (the corruption therefore only visible) on an all-clean pass;
  // moving geometry would re-emit over the corrupted cache and wash the
  // fault away.
  const auto converge = [&engine](std::vector<LayerBox> boxes, bool y_axis) {
    for (int pass = 0; pass < 16; ++pass) {
      const FlatResult result =
          y_axis ? engine.compact_y(boxes) : engine.compact_x(boxes);
      if (result.boxes == boxes) return boxes;
      boxes = result.boxes;
    }
    ADD_FAILURE() << "axis did not converge";
    return boxes;
  };
  const std::vector<LayerBox> x_fix = converge(field.boxes, /*y_axis=*/false);
  engine.corrupt_cached_system_for_testing(false);
  try {
    engine.compact_x(x_fix);
    FAIL() << "corrupted cache must not pass the byte-identity check";
  } catch (const IncrementalDivergence&) {
    // The specific type, not just rsg::Error — the schedule's rethrow
    // logic keys on it.
  }
  // The y axis has its own cache and its own check.
  const std::vector<LayerBox> y_fix = converge(x_fix, /*y_axis=*/true);
  engine.corrupt_cached_system_for_testing(true);
  EXPECT_THROW(engine.compact_y(y_fix), IncrementalDivergence);
}

TEST(Incremental, WarmStartMatchesColdForBothWorklistSolvers) {
  // Whatever the seed — the exact solution, garbage, or an overshoot that
  // fails verification — the warm-started solvers must return exactly the
  // cold solution (the least/greatest fixpoints are unique).
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    const SynthField field = make_random_field(seed, 5 + static_cast<int>(seed % 25));
    std::vector<CompactionBox> boxes;
    for (std::size_t i = 0; i < field.boxes.size(); ++i) {
      CompactionBox cb;
      cb.geometry = field.boxes[i];
      cb.stretchable = field.stretchable[i];
      boxes.push_back(cb);
    }
    ConstraintSystem cold;
    add_box_variables(cold, boxes);
    generate_constraints(cold, boxes, CompactionRules::mosis());
    const SolveStats cold_stats = solve_leftmost_worklist(cold);
    ASSERT_TRUE(cold_stats.converged);

    const std::vector<Coord> exact = cold.values;
    const std::vector<Coord>* exact_ptr = &exact;
    std::vector<Coord> overshoot = exact;
    std::vector<Coord> garbage = exact;
    for (std::size_t v = 0; v < exact.size(); ++v) {
      if (v % 3 == 0) overshoot[v] += 7 + static_cast<Coord>(v % 5);
      garbage[v] = static_cast<Coord>((v * 7919 + seed) % 97) - 11;
    }
    for (const std::vector<Coord>* warm_seed :
         {exact_ptr, const_cast<const std::vector<Coord>*>(&overshoot),
          const_cast<const std::vector<Coord>*>(&garbage)}) {
      ConstraintSystem warm = cold;
      const SolveStats stats = solve_leftmost_worklist(warm, warm_seed);
      ASSERT_TRUE(stats.converged);
      ASSERT_TRUE(stats.warm_attempted);
      ASSERT_EQ(warm.values, exact) << "seed " << seed;
    }
    {
      // The exact seed must be accepted outright, with its effectiveness
      // reported.
      ConstraintSystem warm = cold;
      const SolveStats stats = solve_leftmost_worklist(warm, &exact);
      EXPECT_TRUE(stats.warm_accepted);
      EXPECT_EQ(stats.pops, 0u);
    }

    if (exact.empty()) continue;
    const Coord width = *std::max_element(exact.begin(), exact.end());
    std::vector<Coord> cold_upper;
    solve_rightmost_worklist(cold, width, cold_upper);
    for (const std::vector<Coord>* warm_seed :
         {exact_ptr, const_cast<const std::vector<Coord>*>(&overshoot),
          const_cast<const std::vector<Coord>*>(&garbage),
          const_cast<const std::vector<Coord>*>(&cold_upper)}) {
      ConstraintSystem warm = cold;
      std::vector<Coord> upper;
      const SolveStats stats = solve_rightmost_worklist(warm, width, upper, warm_seed);
      ASSERT_TRUE(stats.converged);
      ASSERT_TRUE(stats.warm_attempted);
      ASSERT_EQ(upper, cold_upper) << "seed " << seed;
    }
    {
      ConstraintSystem warm = cold;
      std::vector<Coord> upper;
      const SolveStats stats = solve_rightmost_worklist(warm, width, upper, &cold_upper);
      EXPECT_TRUE(stats.warm_accepted);
      EXPECT_EQ(stats.pops, 0u);
    }
  }
}

TEST(Incremental, WarmStartStillDetectsPositiveCycles) {
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 10);
  system.add_constraint(a, b, 5, ConstraintKind::kSpacing);
  system.add_constraint(b, a, 5, ConstraintKind::kSpacing);
  const std::vector<Coord> seed{0, 10};
  EXPECT_THROW(solve_leftmost_worklist(system, &seed), Error);
  std::vector<Coord> upper;
  EXPECT_THROW(solve_rightmost_worklist(system, 100, upper, &seed), Error);
}

TEST(Incremental, BothAxesInfeasibleTerminatesScheduleEarly) {
  // A best-effort schedule where BOTH axes are infeasible can never make
  // progress: it must stop after one round with converged = false instead
  // of looping to the cap. The E10 PLA's generated geometry is x-infeasible
  // (rigid overlaps tighter than the MOSIS table); its transpose is then
  // y-infeasible, and the far-displaced union is infeasible on both axes.
  pla::TruthTable table = pla::TruthTable::parse(
      "10 10\n"
      "01 11\n"
      "-1 01\n");
  Generator generator;
  const GeneratorResult pla = pla::generate_pla(generator, table);
  const std::vector<LayerBox> flat = flatten_boxes(*pla.top);
  std::vector<LayerBox> both = flat;
  for (const LayerBox& lb : flat) {
    both.push_back({lb.layer, Box(lb.box.lo.y, lb.box.lo.x + 100000, lb.box.hi.y,
                                  lb.box.hi.x + 100000)});
  }
  XyScheduleOptions options;
  options.best_effort = true;
  options.max_rounds = 8;
  options.stop_when_converged = false;
  for (const bool incremental : {false, true}) {
    XyScheduleOptions run = options;
    run.incremental = incremental;
    const XyScheduleResult result =
        compact_flat_schedule(both, CompactionRules::mosis(), {}, run);
    EXPECT_EQ(result.rounds, 1) << "incremental " << incremental;
    EXPECT_FALSE(result.converged) << "incremental " << incremental;
    EXPECT_TRUE(result.x_infeasible) << "incremental " << incremental;
    EXPECT_TRUE(result.y_infeasible) << "incremental " << incremental;
    ASSERT_EQ(result.round_stats.size(), 1u);
    EXPECT_TRUE(result.round_stats[0].x_skipped);
    EXPECT_TRUE(result.round_stats[0].y_skipped);
    EXPECT_EQ(result.boxes, both);
  }
}

}  // namespace
}  // namespace rsg::compact
