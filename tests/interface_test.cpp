// Tests for interface algebra (§2.2): definition from placements, inversion,
// and the eq 3.1/3.2 placement derivation, including the worked example of
// Figure 2.2.
#include "iface/interface.hpp"

#include <gtest/gtest.h>

#include "iface/interface_table.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

TEST(Interface, IdentityWhenCoincident) {
  const Placement a{{5, 5}, Orientation::kNorth};
  const Interface i = Interface::from_placements(a, a);
  EXPECT_EQ(i.vector, (Vec{0, 0}));
  EXPECT_EQ(i.orientation, Orientation::kNorth);
}

TEST(Interface, Figure22WorkedExample) {
  // Figure 2.2: A is called at orientation South; B sits to A's side. The
  // interface is obtained by reorienting the calling cell by South^-1 =
  // South so that A ends up North; B's resulting orientation is the
  // interface orientation.
  //
  // Make B oriented East at (10, 4) and A South at (0, 0). Then:
  //   O_ab = South^-1 ∘ East = South ∘ East = West
  //   V_ab = South(10, 4) = (-10, -4)
  const Placement a{{0, 0}, Orientation::kSouth};
  const Placement b{{10, 4}, Orientation::kEast};
  const Interface i = Interface::from_placements(a, b);
  EXPECT_EQ(i.orientation, Orientation::kWest);
  EXPECT_EQ(i.vector, (Vec{-10, -4}));
}

TEST(Interface, InverseFormulaMatchesSwappedDefinition) {
  // I_ba = (-O_ab^-1 V_ab, O_ab^-1)  (eq 2.3/2.4): computing the interface
  // with the roles of A and B swapped must equal the algebraic inverse.
  const Placement a{{3, -8}, Orientation::kMirrorWest};
  const Placement b{{-14, 2}, Orientation::kEast};
  EXPECT_EQ(Interface::from_placements(a, b).inverse(), Interface::from_placements(b, a));
}

TEST(Interface, PlacementDerivationRecoversExamplePlacement) {
  // Define by example, then re-derive: placing B from A with the extracted
  // interface must land exactly on the example placement of B (and vice
  // versa through place_reference).
  const Placement a{{40, 0}, Orientation::kEast};
  const Placement b{{12, -6}, Orientation::kMirrorSouth};
  const Interface i = Interface::from_placements(a, b);
  EXPECT_EQ(i.place_other(a), b);
  EXPECT_EQ(i.place_reference(b), a);
}

// --- Property sweep: all 64 orientation pairs -------------------------------

class InterfacePropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Placement a() const { return {{21, -13}, Orientation::from_index(std::get<0>(GetParam()))}; }
  Placement b() const { return {{-7, 52}, Orientation::from_index(std::get<1>(GetParam()))}; }
};

TEST_P(InterfacePropertyTest, RoundTripThroughPlaceOther) {
  const Interface i = Interface::from_placements(a(), b());
  EXPECT_EQ(i.place_other(a()), b());
}

TEST_P(InterfacePropertyTest, RoundTripThroughPlaceReference) {
  const Interface i = Interface::from_placements(a(), b());
  EXPECT_EQ(i.place_reference(b()), a());
}

TEST_P(InterfacePropertyTest, DoubleInverseIsIdentity) {
  const Interface i = Interface::from_placements(a(), b());
  EXPECT_EQ(i.inverse().inverse(), i);
}

TEST_P(InterfacePropertyTest, InterfaceIsInvariantUnderCommonIsometry) {
  // The interface deskews by A's orientation, so transforming BOTH
  // placements by any common placement leaves the interface unchanged —
  // this is why one sample-layout example defines all occurrences of the
  // interface in the final layout (§2.3).
  const Interface i = Interface::from_placements(a(), b());
  for (const Orientation o : Orientation::all()) {
    const Placement common{{123, -77}, o};
    const Interface moved =
        Interface::from_placements(common.compose(a()), common.compose(b()));
    EXPECT_EQ(moved, i) << "common isometry " << o.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, InterfacePropertyTest,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

// --- §3.4: the same-celltype ambiguity ---------------------------------------

TEST(Interface, SelfInterfaceGenerallyDiffersFromItsInverse) {
  // I_aa = (0, East) has V = V' but I != I^-1 — the §3.4 example showing no
  // selection criterion can use the vector alone.
  const Interface i{{0, 0}, Orientation::kEast};
  const Interface inv = i.inverse();
  EXPECT_EQ(inv.vector, (Vec{0, 0}));
  EXPECT_EQ(inv.orientation, Orientation::kWest);
  EXPECT_NE(i, inv);

  // I_aa = (V, North) has O = O' but I != I^-1 — the orientation alone is
  // insufficient too.
  const Interface j{{5, 0}, Orientation::kNorth};
  EXPECT_EQ(j.inverse().orientation, Orientation::kNorth);
  EXPECT_EQ(j.inverse().vector, (Vec{-5, 0}));
  EXPECT_NE(j, j.inverse());
}

// --- Interface table ---------------------------------------------------------

TEST(InterfaceTable, StoresBothDirections) {
  InterfaceTable table;
  const Interface i{{44, 0}, Orientation::kNorth};
  table.declare("a", "b", 1, i);
  EXPECT_EQ(table.get("a", "b", 1), i);
  EXPECT_EQ(table.get("b", "a", 1), i.inverse());
  EXPECT_EQ(table.size(), 2u);
}

TEST(InterfaceTable, SameCellStoredOnceInReferenceDirection) {
  InterfaceTable table;
  const Interface i{{44, 0}, Orientation::kEast};
  table.declare("a", "a", 1, i);
  EXPECT_EQ(table.get("a", "a", 1), i);
  EXPECT_EQ(table.size(), 1u);
}

TEST(InterfaceTable, RedundantIdenticalDeclarationIsIgnored) {
  // HPLA's sample layout contained two identical instances of the
  // and-sq/connect-ao interface when only one was required (§1.2.2); the
  // RSG tolerates the duplicate.
  InterfaceTable table;
  const Interface i{{44, 0}, Orientation::kNorth};
  table.declare("a", "b", 1, i);
  table.declare("a", "b", 1, i);
  EXPECT_EQ(table.size(), 2u);
}

TEST(InterfaceTable, ConflictingDeclarationThrows) {
  InterfaceTable table;
  table.declare("a", "b", 1, Interface{{44, 0}, Orientation::kNorth});
  EXPECT_THROW(table.declare("a", "b", 1, Interface{{45, 0}, Orientation::kNorth}), LayoutError);
}

TEST(InterfaceTable, FamiliesOfInterfacesBetweenSameCells) {
  // Figure 2.3: several different legal interfaces between one pair of
  // cells, distinguished by index.
  InterfaceTable table;
  table.declare("a", "b", 1, Interface{{44, 0}, Orientation::kWest});
  table.declare("a", "b", 2, Interface{{0, 30}, Orientation::kSouth});
  table.declare("a", "c", 7, Interface{{1, 1}, Orientation::kNorth});
  EXPECT_EQ(table.indices("a", "b"), (std::vector<int>{1, 2}));
  EXPECT_EQ(table.indices("a", "c"), (std::vector<int>{7}));
  EXPECT_TRUE(table.indices("b", "c").empty());
}

TEST(InterfaceTable, MissingInterfaceThrowsWithDiagnostic) {
  InterfaceTable table;
  try {
    table.get("x", "y", 3);
    FAIL() << "expected LayoutError";
  } catch (const LayoutError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("x"), std::string::npos);
    EXPECT_NE(message.find("y"), std::string::npos);
    EXPECT_NE(message.find("3"), std::string::npos);
  }
}

TEST(InterfaceTable, CountsLookups) {
  InterfaceTable table;
  table.declare("a", "b", 1, Interface{{44, 0}, Orientation::kNorth});
  table.reset_lookup_count();
  (void)table.find("a", "b", 1);
  (void)table.find("a", "b", 2);
  EXPECT_EQ(table.lookups(), 2u);
}

}  // namespace
}  // namespace rsg
