// Tests for symbolic contact expansion (§6.4.3, Figure 6.9).
#include "compact/layer_expand.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rsg::compact {
namespace {

int count_layer(const std::vector<LayerBox>& boxes, Layer layer) {
  int n = 0;
  for (const LayerBox& lb : boxes) n += (lb.layer == layer);
  return n;
}

TEST(LayerExpand, MinimalContactYieldsOneCut) {
  // 8x8 contact: interior 4x4 holds exactly one 4x4 cut.
  const std::vector<LayerBox> in = {{Layer::kContact, Box(0, 0, 8, 8)}};
  const auto out = expand_contacts(in);
  EXPECT_EQ(count_layer(out, Layer::kMetal1), 1);
  EXPECT_EQ(count_layer(out, Layer::kPoly), 1);
  EXPECT_EQ(count_layer(out, Layer::kContactCut), 1);
  EXPECT_EQ(count_layer(out, Layer::kContact), 0);
  // The single cut is centered.
  for (const LayerBox& lb : out) {
    if (lb.layer == Layer::kContactCut) {
      EXPECT_EQ(lb.box, Box(2, 2, 6, 6));
    }
  }
}

TEST(LayerExpand, LargeContactYieldsCutArray) {
  // Figure 6.9: a big contact becomes a grid of cuts. Interior 20x12:
  // 3 cuts along x (4 + 8k <= 20 -> k = 2), 2 along y.
  const std::vector<LayerBox> in = {{Layer::kContact, Box(0, 0, 24, 16)}};
  const auto out = expand_contacts(in);
  EXPECT_EQ(count_layer(out, Layer::kContactCut), 6);
  EXPECT_EQ(cut_count(Box(0, 0, 24, 16)), 6);
}

TEST(LayerExpand, CutCountGrowsWithContactSize) {
  int previous = 0;
  for (Coord size = 8; size <= 40; size += 8) {
    const int cuts = cut_count(Box(0, 0, size, size));
    EXPECT_GE(cuts, previous);
    previous = cuts;
  }
  EXPECT_EQ(cut_count(Box(0, 0, 40, 40)), 25);  // 5x5 grid
}

TEST(LayerExpand, NonContactLayersPassThrough) {
  const std::vector<LayerBox> in = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kContact, Box(20, 0, 28, 8)},
      {Layer::kDiffusion, Box(40, 0, 50, 4)},
  };
  const auto out = expand_contacts(in);
  EXPECT_EQ(count_layer(out, Layer::kMetal1), 2);  // original + contact metal
  EXPECT_EQ(count_layer(out, Layer::kDiffusion), 1);
}

TEST(LayerExpand, TooSmallContactThrows) {
  const std::vector<LayerBox> in = {{Layer::kContact, Box(0, 0, 6, 6)}};
  EXPECT_THROW(expand_contacts(in), Error);
}

TEST(LayerExpand, CustomRuleTable) {
  ContactRules rules;
  rules.cut_size = 2;
  rules.cut_spacing = 2;
  rules.metal_overlap = 1;
  const std::vector<LayerBox> in = {{Layer::kContact, Box(0, 0, 10, 6)}};
  const auto out = expand_contacts(in, rules);
  // Interior 8x4: 2 cuts along x ((8-2)/4+1 = 2), 1 along y.
  EXPECT_EQ(count_layer(out, Layer::kContactCut), 2);
}

TEST(LayerExpand, CutsStayInsideTheContact) {
  const Box contact(3, 5, 37, 31);
  const auto out = expand_contacts({{Layer::kContact, contact}});
  for (const LayerBox& lb : out) {
    if (lb.layer != Layer::kContactCut) continue;
    EXPECT_TRUE(contact.contains(lb.box.lo));
    EXPECT_TRUE(contact.contains(lb.box.hi));
  }
}

}  // namespace
}  // namespace rsg::compact
