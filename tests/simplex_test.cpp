// Tests for the two-phase simplex solvers used by leaf-cell compaction
// (§6.3). Every case runs against both engines — the dense tableau baseline
// and the sparse revised simplex — through the value-parameterized fixture,
// so the solvers cannot drift apart behaviourally.
#include "compact/simplex.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rsg::compact {
namespace {

class SimplexMethod : public ::testing::TestWithParam<LpMethod> {
 protected:
  LpSolution solve(const LpProblem& p) const { return solve_lp(p, GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Engines, SimplexMethod,
                         ::testing::Values(LpMethod::kDenseTableau, LpMethod::kSparseRevised,
                                           LpMethod::kSparseDual),
                         [](const ::testing::TestParamInfo<LpMethod>& info) {
                           switch (info.param) {
                             case LpMethod::kDenseTableau:
                               return "Dense";
                             case LpMethod::kSparseRevised:
                               return "Sparse";
                             case LpMethod::kSparseDual:
                               return "SparseDual";
                           }
                           return "Unknown";
                         });

TEST_P(SimplexMethod, TrivialMinimumAtOrigin) {
  // min x + y, x,y >= 0, no constraints: origin.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST_P(SimplexMethod, ClassicTwoVariableMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, z=36.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-3.0, -5.0};  // minimize the negation
  p.constraints = {
      {{{0, 1.0}}, 4.0},
      {{{1, 2.0}}, 12.0},
      {{{0, 3.0}, {1, 2.0}}, 18.0},
  };
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
}

TEST_P(SimplexMethod, GreaterEqualConstraintsViaNegativeRhs) {
  // min x s.t. x >= 7  (written -x <= -7): phase 1 must find feasibility.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints = {{{{0, -1.0}}, -7.0}};
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.x[0], 7.0, 1e-7);
}

TEST_P(SimplexMethod, DifferenceConstraintChain) {
  // min x3 s.t. x1 >= 2, x2 - x1 >= 3, x3 - x2 >= 4  -> x3 = 9.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {0.0, 0.0, 1.0};
  p.constraints = {
      {{{0, -1.0}}, -2.0},
      {{{0, 1.0}, {1, -1.0}}, -3.0},
      {{{1, 1.0}, {2, -1.0}}, -4.0},
  };
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.x[2], 9.0, 1e-7);
}

TEST_P(SimplexMethod, InfeasibleDetected) {
  // x <= 1 and x >= 3.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints = {
      {{{0, 1.0}}, 1.0},
      {{{0, -1.0}}, -3.0},
  };
  const LpSolution s = solve(p);
  EXPECT_FALSE(s.feasible);
}

TEST_P(SimplexMethod, UnboundedDetected) {
  // min -x, x >= 0, unconstrained above.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_FALSE(s.bounded);
}

TEST_P(SimplexMethod, PitchStyleSystem) {
  // The Figure 6.3 shape: edge variables x1..x4 of one cell plus pitch λ.
  // Intra: x2 - x1 >= 2, x3 - x2 >= 3, x4 - x3 >= 2.
  // Inter (folded): x1 - x4 + λ >= 4  and  x3 - x4 + λ >= 9.
  // min λ: λ = max(4 + x4 - x1, 9 + x4 - x3) with x deltas at their minima:
  // x4 - x1 = 7, x4 - x3 = 2  ->  λ = max(11, 11) = 11.
  LpProblem p;
  p.num_vars = 5;  // x1..x4, λ
  p.objective = {0.0, 0.0, 0.0, 0.0, 1.0};
  auto ge = [&](std::vector<std::pair<int, double>> terms, double rhs) {
    for (auto& [v, c] : terms) c = -c;
    p.constraints.push_back({std::move(terms), -rhs});
  };
  ge({{1, 1.0}, {0, -1.0}}, 2.0);
  ge({{2, 1.0}, {1, -1.0}}, 3.0);
  ge({{3, 1.0}, {2, -1.0}}, 2.0);
  ge({{0, 1.0}, {3, -1.0}, {4, 1.0}}, 4.0);
  ge({{2, 1.0}, {3, -1.0}, {4, 1.0}}, 9.0);
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.x[4], 11.0, 1e-7);
}

TEST_P(SimplexMethod, ObjectiveSizeValidated) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0};
  EXPECT_THROW(solve(p), Error);
}

TEST_P(SimplexMethod, VariableIndexValidated) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints = {{{{3, 1.0}}, 1.0}};
  EXPECT_THROW(solve(p), Error);
}

TEST_P(SimplexMethod, ArtificialsCannotReenterInPhase2) {
  // Regression: phase 2 used to block artificial re-entry with a 1e12
  // big-M cost, which a real variable with a larger objective magnitude
  // swamps. Here y's -2e12 coefficient made the expelled artificial price
  // negative again; it re-entered the basis and the "solution" was x = 0,
  // violating x >= 5. With artificial columns barred from phase 2 instead,
  // the true optimum x = 5, y = 5 comes back.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {0.0, -2e12};
  p.constraints = {
      {{{0, -1.0}}, -5.0},  // x >= 5: phase 1 introduces an artificial
      {{{0, 1.0}, {1, 1.0}}, 10.0},
  };
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.x[0], 5.0, 1e-6);
  EXPECT_NEAR(s.x[1], 5.0, 1e-6);
  EXPECT_NEAR(s.objective, -1e13, 1.0);
}

TEST_P(SimplexMethod, DegenerateTiesDoNotCycle) {
  // Beale's classic cycling example: Dantzig pricing loops forever on it
  // without a guard, so this also exercises the Bland fallback after a
  // degenerate-pivot streak.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-0.75, 150.0, -0.02};
  p.constraints = {
      {{{0, 0.25}, {1, -60.0}, {2, -0.04}}, 0.0},
      {{{0, 0.5}, {1, -90.0}, {2, -0.02}}, 0.0},
      {{{2, 1.0}}, 1.0},
  };
  const LpSolution s = solve(p);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
  // The degenerate plateau is a primal phenomenon: the dual engine walks a
  // different vertex sequence (and may fall back), so only the primal
  // engines are pinned to visit it.
  if (GetParam() != LpMethod::kSparseDual) {
    EXPECT_GT(s.stats.degenerate_pivots, 0);
  }
}

}  // namespace
}  // namespace rsg::compact
