// Reproduction of E4 (Figures 3.5–3.7): interfaces between two instances of
// the SAME celltype are ambiguous in an undirected graph — I°_aa and its
// inverse both satisfy the edge, and they generally produce non-equivalent
// layouts. Directed edges resolve the ambiguity: the tail of the edge is the
// reference instance.
#include <gtest/gtest.h>

#include "graph/connectivity_graph.hpp"
#include "graph/expand.hpp"
#include "io/def_writer.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

class AmbiguityTest : public ::testing::Test {
 protected:
  AmbiguityTest() {
    // An L-shaped cell: asymmetric so that mirrored/rotated placements are
    // geometrically distinguishable.
    Cell& a = cells_.create("a");
    a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
    a.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
    // The same-celltype interface of Figure 3.5: the right instance is
    // displaced and quarter-turned.
    interfaces_.declare("a", "a", 1, Interface{{14, 2}, Orientation::kWest});
  }

  CellTable cells_;
  InterfaceTable interfaces_;
};

TEST_F(AmbiguityTest, TheTwoInterpretationsDiffer) {
  // Figure 3.6: starting from a placed left node, I°_aa and (I°_aa)^-1 give
  // different placements for the right node — the two "non equivalent
  // layouts" of the figure.
  const Interface i = interfaces_.get("a", "a", 1);
  const Placement left = kIdentityPlacement;
  const Placement forward = i.place_other(left);
  const Placement backward = i.inverse().place_other(left);
  EXPECT_NE(forward, backward);
}

TEST_F(AmbiguityTest, DirectedEdgeSelectsTheForwardInterpretation) {
  ConnectivityGraph graph;
  GraphNode* n1 = graph.make_instance(&cells_.get("a"));
  GraphNode* n2 = graph.make_instance(&cells_.get("a"));
  graph.connect(n1, n2, 1);  // n1 -> n2: n1 is the reference instance
  expand_to_cell(graph, n1, "pair_fwd", interfaces_, cells_);

  EXPECT_EQ(*n1->placement, kIdentityPlacement);
  EXPECT_EQ(*n2->placement, interfaces_.get("a", "a", 1).place_other(kIdentityPlacement));
}

TEST_F(AmbiguityTest, ReversedEdgeSelectsTheInverseInterpretation) {
  ConnectivityGraph graph;
  GraphNode* n1 = graph.make_instance(&cells_.get("a"));
  GraphNode* n2 = graph.make_instance(&cells_.get("a"));
  graph.connect(n2, n1, 1);  // n2 -> n1: now n2 is the reference instance
  expand_to_cell(graph, n1, "pair_rev", interfaces_, cells_);

  // Rebase to n1 at identity (the expander roots at n1 anyway): n2 must sit
  // where the INVERSE interface puts it.
  EXPECT_EQ(*n1->placement, kIdentityPlacement);
  EXPECT_EQ(*n2->placement,
            interfaces_.get("a", "a", 1).inverse().place_other(kIdentityPlacement));
}

TEST_F(AmbiguityTest, ForwardAndReversedEdgesGiveNonEquivalentLayouts) {
  // The geometric content of Figure 3.6: the two directed interpretations
  // disagree as layouts, not merely as placements.
  CellTable cells_fwd;
  Cell& af = cells_fwd.create("a");
  af.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  af.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
  ConnectivityGraph gf;
  GraphNode* f1 = gf.make_instance(&af);
  GraphNode* f2 = gf.make_instance(&af);
  gf.connect(f1, f2, 1);
  const Cell& fwd = expand_to_cell(gf, f1, "p", interfaces_, cells_fwd);

  CellTable cells_rev;
  Cell& ar = cells_rev.create("a");
  ar.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  ar.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
  ConnectivityGraph gr;
  GraphNode* r1 = gr.make_instance(&ar);
  GraphNode* r2 = gr.make_instance(&ar);
  gr.connect(r2, r1, 1);
  const Cell& rev = expand_to_cell(gr, r1, "p", interfaces_, cells_rev);

  EXPECT_NE(def_to_string(fwd), def_to_string(rev));
}

TEST_F(AmbiguityTest, ChainOfSameCellEdgesIsDeterministic) {
  // A longer chain: expanding from either end must give the same relative
  // geometry, because edge direction — not traversal order — selects the
  // interface interpretation. This is precisely what failed in "the first
  // versions of the RSG" (§3.4).
  auto build = [&](bool root_at_head) {
    ConnectivityGraph graph;
    CellTable cells;
    Cell& a = cells.create("a");
    a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
    a.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
    std::vector<GraphNode*> nodes;
    for (int i = 0; i < 5; ++i) nodes.push_back(graph.make_instance(&a));
    for (int i = 0; i + 1 < 5; ++i) graph.connect(nodes[i], nodes[i + 1], 1);
    expand_to_cell(graph, root_at_head ? nodes.front() : nodes.back(), "chain", interfaces_,
                   cells);
    // Relative placement of the two chain ends, which is isometry-invariant.
    return Interface::from_placements(*nodes.front()->placement, *nodes.back()->placement);
  };
  EXPECT_EQ(build(true), build(false));
}

TEST_F(AmbiguityTest, SymmetricInterfaceIsDirectionInsensitive) {
  // If I°_aa happens to equal its own inverse (e.g. a pure half-turn), both
  // directions agree and no ambiguity exists.
  InterfaceTable table;
  table.declare("a", "a", 1, Interface{{0, 0}, Orientation::kSouth});
  const Interface i = table.get("a", "a", 1);
  EXPECT_EQ(i, i.inverse());
}

}  // namespace
}  // namespace rsg
