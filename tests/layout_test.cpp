// Tests for the layout database: cells, flattening, box merging (the §6.4.1
// preprocessing), bounding boxes, and the design-rule checker.
#include "layout/cell.hpp"

#include <gtest/gtest.h>

#include "layout/cell_table.hpp"
#include "layout/design_rules.hpp"
#include "layout/flatten.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

TEST(CellTable, CreateFindAndDuplicateDetection) {
  CellTable table;
  Cell& a = table.create("a");
  EXPECT_EQ(table.find("a"), &a);
  EXPECT_EQ(table.find("b"), nullptr);
  EXPECT_THROW(table.create("a"), LayoutError);
  EXPECT_THROW(table.get("b"), LayoutError);
  EXPECT_EQ(table.names_in_order(), (std::vector<std::string>{"a"}));
}

TEST(Cell, BoundingBoxCoversBoxesAndInstances) {
  CellTable table;
  Cell& leaf = table.create("leaf");
  leaf.add_box(Layer::kMetal1, Box(0, 0, 10, 10));
  Cell& parent = table.create("parent");
  parent.add_box(Layer::kPoly, Box(-5, -5, 0, 0));
  parent.add_instance(&leaf, Placement{{20, 0}, Orientation::kNorth});
  EXPECT_EQ(parent.bounding_box(), Box(-5, -5, 30, 10));
}

TEST(Cell, BoundingBoxRespectsOrientation) {
  CellTable table;
  Cell& leaf = table.create("leaf");
  leaf.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  Cell& parent = table.create("parent");
  parent.add_instance(&leaf, Placement{{0, 0}, Orientation::kWest});
  // West: (x,y) -> (-y,x): the 10x4 box becomes 4x10 at [-4..0]x[0..10].
  EXPECT_EQ(parent.bounding_box(), Box(-4, 0, 0, 10));
}

TEST(Cell, SelfInstantiationRejected) {
  CellTable table;
  Cell& a = table.create("a");
  EXPECT_THROW(a.add_instance(&a, kIdentityPlacement), LayoutError);
  EXPECT_THROW(a.add_instance(nullptr, kIdentityPlacement), LayoutError);
}

TEST(Flatten, TransformsThroughTwoLevels) {
  CellTable table;
  Cell& leaf = table.create("leaf");
  leaf.add_box(Layer::kMetal1, Box(0, 0, 2, 1));
  Cell& mid = table.create("mid");
  mid.add_instance(&leaf, Placement{{10, 0}, Orientation::kSouth});
  Cell& top = table.create("top");
  top.add_instance(&mid, Placement{{100, 100}, Orientation::kNorth});

  const auto boxes = flatten_boxes(top);
  ASSERT_EQ(boxes.size(), 1u);
  // leaf box under South at (10,0): (-2,-1)..(0,0) shifted to (8,-1)..(10,0),
  // then +(100,100).
  EXPECT_EQ(boxes[0].box, Box(108, 99, 110, 100));
}

TEST(Flatten, CountsAndLabels) {
  CellTable table;
  Cell& leaf = table.create("leaf");
  leaf.add_box(Layer::kMetal1, Box(0, 0, 2, 2));
  leaf.add_label("pin", {1, 1});
  Cell& top = table.create("top");
  top.add_instance(&leaf, Placement{{10, 0}, Orientation::kNorth});
  top.add_instance(&leaf, Placement{{20, 0}, Orientation::kNorth});

  EXPECT_EQ(top.flattened_box_count(), 2u);
  EXPECT_EQ(top.flattened_instance_count(), 2u);
  const FlattenResult flat = flatten(top);
  ASSERT_EQ(flat.labels.size(), 2u);
  EXPECT_EQ(flat.labels[0].at, (Point{11, 1}));
  EXPECT_EQ(flat.labels[1].at, (Point{21, 1}));
}

TEST(Flatten, DetectsRunawayDepth) {
  // CellTable cannot create cycles, but hand-wired cells can.
  Cell a("a");
  Cell b("b");
  a.add_instance(&b, kIdentityPlacement);
  // Wire the cycle through the back door of vector storage.
  b.add_instance(&a, kIdentityPlacement);
  EXPECT_THROW(flatten(a), LayoutError);
}

TEST(MergeBoxes, JoinsAbuttingFragments) {
  // Figure 6.5's fragmented bus: n abutting boxes merge into one strip.
  std::vector<LayerBox> boxes;
  for (int i = 0; i < 6; ++i) {
    boxes.push_back({Layer::kDiffusion, Box(i * 10, 0, (i + 1) * 10, 4)});
  }
  const auto merged = merge_boxes(boxes);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].box, Box(0, 0, 60, 4));
}

TEST(MergeBoxes, OverlappingBoxesMergeButLayersStaySeparate) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kMetal1, Box(5, 0, 20, 4)},
      {Layer::kPoly, Box(0, 0, 10, 4)},
  };
  const auto merged = merge_boxes(boxes);
  ASSERT_EQ(merged.size(), 2u);
  int metal = 0;
  int poly = 0;
  for (const LayerBox& lb : merged) {
    if (lb.layer == Layer::kMetal1) {
      ++metal;
      EXPECT_EQ(lb.box, Box(0, 0, 20, 4));
    } else {
      ++poly;
    }
  }
  EXPECT_EQ(metal, 1);
  EXPECT_EQ(poly, 1);
}

TEST(MergeBoxes, LShapeSplitsIntoMaximalHorizontalStrips) {
  // Vertical bar [0..4]x[0..20] + horizontal bar [0..20]x[0..4]: the merge
  // produces maximal-x strips, so no vertical edge is hidden (§6.4.1).
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 4, 20)},
      {Layer::kMetal1, Box(0, 0, 20, 4)},
  };
  auto merged = merge_boxes(boxes);
  ASSERT_EQ(merged.size(), 2u);
  std::sort(merged.begin(), merged.end(),
            [](const LayerBox& a, const LayerBox& b) { return a.box.lo.y < b.box.lo.y; });
  EXPECT_EQ(merged[0].box, Box(0, 0, 20, 4));
  EXPECT_EQ(merged[1].box, Box(0, 4, 4, 20));
}

TEST(DesignRules, CleanLayoutPasses) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kMetal1, Box(0, 10, 10, 14)},  // 6 apart: exactly legal
  };
  EXPECT_TRUE(check_design_rules(boxes, DesignRules::mosis_lambda()).empty());
}

TEST(DesignRules, WidthAndSpacingViolationsReported) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 3, 4)},     // 3 < min width 4
      {Layer::kMetal1, Box(9, 0, 20, 4)},    // 6 apart from first: legal
      {Layer::kMetal1, Box(24, 0, 40, 4)},   // 4 < 6 from second: violation
  };
  const auto violations = check_design_rules(boxes, DesignRules::mosis_lambda());
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].rule, "min_width(metal1)");
  EXPECT_EQ(violations[1].rule, "min_spacing(metal1,metal1)");
}

TEST(DesignRules, AbuttingSameLayerBoxesAreOneNet) {
  // The RSG's overlap-tolerant placement (§2.3) must not flag abutment or
  // overlap of same-layer material as a spacing violation.
  std::vector<LayerBox> boxes = {
      {Layer::kPoly, Box(0, 0, 10, 4)},
      {Layer::kPoly, Box(10, 0, 20, 4)},
      {Layer::kPoly, Box(15, 0, 30, 4)},
  };
  EXPECT_TRUE(check_design_rules(boxes, DesignRules::mosis_lambda()).empty());
}

}  // namespace
}  // namespace rsg
