// Compile-once/run-many: CompiledDesign + GenerationSession.
//
// The load-bearing contracts: (1) GeneratorResult owns what it points at —
// results stay valid after the Generator/session dies; (2) a session run is
// BYTE-identical to a legacy Generator run of the same design; (3) N
// concurrent sessions over one shared CompiledDesign neither race (TSan CI
// job) nor perturb each other's output; (4) the base tables are immutable —
// session mutations land in the overlay.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/param_file.hpp"
#include "pla/pla_builder.hpp"
#include "pla/truth_table.hpp"
#include "rsg/compiled_design.hpp"
#include "rsg/generator.hpp"
#include "rsg/session.hpp"
#include "support/arena.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

struct SeedDesign {
  std::string name;
  std::string sample;
  std::string design;
  std::string params;
  std::string top;          // explicit top for designs that need one
  std::string truth_table;  // non-empty = PLA-style, needs an encoding table
};

// The five seed designs of designs/README.md plus an inline synthetic
// design, all driven exactly as their tests drive them.
std::vector<SeedDesign> seed_designs() {
  const std::string pla_sample = read_text_file(designs_path("pla.sample"));
  const std::string pla_params = read_text_file(designs_path("pla.par"));
  const std::string tt =
      "10- 10\n"
      "01- 01\n"
      "-11 11\n";
  std::vector<SeedDesign> designs;
  designs.push_back({"mult", read_text_file(designs_path("mult.sample")),
                     read_text_file(designs_path("mult.rsg")),
                     read_text_file(designs_path("mult.par")), "", ""});
  designs.push_back({"pla", pla_sample, read_text_file(designs_path("pla.rsg")), pla_params,
                     "pla", tt});
  designs.push_back({"pla_folded", pla_sample, read_text_file(designs_path("pla_folded.rsg")),
                     pla_params, "foldedpla",
                     "10 10\n"
                     "01 01\n"});
  designs.push_back({"decoder", pla_sample, read_text_file(designs_path("decoder.rsg")),
                     pla_params + "decbits = 2\n", "decoder", tt});
  designs.push_back({"ram", read_text_file(designs_path("ram.sample")),
                     read_text_file(designs_path("ram.rsg")),
                     read_text_file(designs_path("ram.par")), "", ""});
  // Synthetic 6th design: a small regular tiling defined entirely inline,
  // in the same idiom as mult.rsg's marray.
  designs.push_back({"synth",
                     "cell tile\n"
                     "  box poly 0 0 4 12\n"
                     "  box diff 0 4 12 8\n"
                     "end\n"
                     "\n"
                     "assembly\n"
                     "  inst t1 tile 0 0 N\n"
                     "  inst t2 tile 10 0 N\n"
                     "  inst t3 tile 0 14 N\n"
                     "  label 1 from t1 to t2\n"
                     "  label 2 from t1 to t3\n"
                     "end\n",
                     "(macro mfield (rows cols)\n"
                     "  (do (i 1 (+ i 1) (> i rows))\n"
                     "      (do (j 1 (+ j 1) (> j cols))\n"
                     "          (mk_instance t.i.j tile)\n"
                     "          (cond ((> j 1) (connect t.i.(- j 1) t.i.j 1)))\n"
                     "          (cond ((> i 1) (connect t.(- i 1).j t.i.j 2))))))\n"
                     "(assign f (mfield rows cols))\n"
                     "(mk_cell \"synth_field\" (subcell f t.1.1))\n",
                     "rows = 3\ncols = 4\n", "", ""});
  return designs;
}

std::string run_legacy(const SeedDesign& design) {
  Generator generator;
  lang::Interpreter::EncodingTable encoding;
  if (!design.truth_table.empty()) {
    encoding = pla::to_encoding_table(pla::TruthTable::parse(design.truth_table));
    generator.set_encoding_table(&encoding);
  }
  return generator.run(design.sample, design.design, design.params, design.top).output;
}

std::string run_session(const std::shared_ptr<const CompiledDesign>& compiled,
                        const SeedDesign& design) {
  GenerationSession session(compiled);
  lang::Interpreter::EncodingTable encoding;
  if (!design.truth_table.empty()) {
    encoding = pla::to_encoding_table(pla::TruthTable::parse(design.truth_table));
    session.set_encoding_table(&encoding);
  }
  return session.generate(design.params, design.top).output;
}

TEST(GeneratorResult, OutlivesItsGenerator) {
  GeneratorResult result;
  {
    Generator generator;
    result = generator.run(read_text_file(designs_path("mult.sample")),
                           read_text_file(designs_path("mult.rsg")),
                           read_text_file(designs_path("mult.par")));
  }  // generator destroyed; result.keepalive retains the cell table
  ASSERT_NE(result.top, nullptr);
  EXPECT_FALSE(result.top->name().empty());
  EXPECT_FALSE(result.top->instances().empty());
  EXPECT_FALSE(result.output.empty());
}

TEST(GeneratorResult, OutlivesItsSessionAndDesign) {
  GeneratorResult result;
  {
    auto compiled = CompiledDesign::compile(read_text_file(designs_path("mult.sample")),
                                            read_text_file(designs_path("mult.rsg")));
    GenerationSession session(compiled);
    compiled.reset();  // the session keeps the design alive...
    result = session.generate(read_text_file(designs_path("mult.par")));
  }  // ...and the result keeps the session state alive
  ASSERT_NE(result.top, nullptr);
  EXPECT_FALSE(result.top->instances().empty());
  EXPECT_FALSE(result.output.empty());
}

TEST(GenerationSession, ByteIdenticalToLegacyGenerator) {
  for (const SeedDesign& design : seed_designs()) {
    SCOPED_TRACE(design.name);
    const std::string legacy = run_legacy(design);
    auto compiled = CompiledDesign::compile(design.sample, design.design);
    const std::string served = run_session(compiled, design);
    EXPECT_EQ(legacy, served);
  }
}

TEST(GenerationSession, ConcurrentMixedSessionsAreByteIdentical) {
  const std::vector<SeedDesign> designs = seed_designs();

  // Compile each design once; record single-threaded reference output.
  std::vector<std::shared_ptr<const CompiledDesign>> compiled;
  std::vector<std::string> reference;
  for (const SeedDesign& design : designs) {
    compiled.push_back(CompiledDesign::compile(design.sample, design.design));
    reference.push_back(run_session(compiled.back(), design));
    EXPECT_EQ(reference.back(), run_legacy(design)) << design.name;
  }

  // N threads, each running a rotating mix of designs off the SHARED
  // compiled bases. Any cross-session interference shows up as an output
  // diff; any base write shows up under TSan.
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 3;
  std::vector<std::vector<std::string>> outputs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        const std::size_t i = static_cast<std::size_t>(t + r) % designs.size();
        outputs[static_cast<std::size_t>(t)].push_back(run_session(compiled[i], designs[i]));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRunsPerThread; ++r) {
      const std::size_t i = static_cast<std::size_t>(t + r) % designs.size();
      EXPECT_EQ(outputs[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)], reference[i])
          << designs[i].name << " diverged on thread " << t << " run " << r;
    }
  }
}

TEST(GenerationSession, OverlayLeavesBaseUntouched) {
  auto compiled = CompiledDesign::compile(read_text_file(designs_path("mult.sample")),
                                          read_text_file(designs_path("mult.rsg")));
  const std::size_t base_cells = compiled->cells().size();
  const std::size_t base_interfaces = compiled->interfaces().size();

  GenerationSession first(compiled);
  first.generate(read_text_file(designs_path("mult.par")));
  EXPECT_EQ(compiled->cells().size(), base_cells);
  EXPECT_EQ(compiled->interfaces().size(), base_interfaces);
  EXPECT_GT(first.cells().size(), base_cells);  // overlay sees base + new cells

  // A sibling session must not see the first session's cells.
  GenerationSession second(compiled);
  EXPECT_EQ(second.cells().size(), base_cells);
  const GeneratorResult result = second.generate(read_text_file(designs_path("mult.par")));
  EXPECT_NE(result.top, nullptr);
}

TEST(GenerationSession, BaseCellsAreImmutableThroughOverlay) {
  auto compiled = CompiledDesign::compile(
      "cell seed\n  box metal1 0 0 4 4\nend\n"
      "assembly\n"
      "  inst s1 seed 0 0 N\n"
      "  inst s2 seed 6 0 N\n"
      "  label 1 from s1 to s2\n"
      "end\n",
      "(mk_instance s seed)\n");
  GenerationSession session(compiled);
  // Const lookup falls through to the base...
  EXPECT_NE(std::as_const(session.cells()).find("seed"), nullptr);
  // ...but a mutable handle on a base cell is refused.
  EXPECT_THROW(session.cells().get("seed"), LayoutError);
  // And overlay creation cannot shadow a base name.
  EXPECT_THROW(session.cells().create("seed"), LayoutError);
}

TEST(GenerationSession, SnapshotBackedCompile) {
  const std::string sample = read_text_file(designs_path("mult.sample"));
  const std::string design = read_text_file(designs_path("mult.rsg"));
  const std::string params = read_text_file(designs_path("mult.par"));

  // Generate once, snapshot the library.
  const std::string path = testing::TempDir() + "session_test_lib.rsgb";
  {
    Generator generator;
    GeneratorResult result = generator.run(sample, design, params);
    generator.export_snapshot(path, result.top->name());
  }

  // A design compiled over the snapshot sees the snapshot cells as base
  // library without any sample/design re-run.
  CompileOptions options;
  options.snapshot_path = path;
  auto compiled = CompiledDesign::compile(
      "cell compile_probe\n  box metal1 0 0 2 2\nend\n", "nil\n", options);
  ASSERT_NE(compiled->snapshot_stats(), nullptr);
  EXPECT_GT(compiled->snapshot_stats()->cells, 0u);
  EXPECT_GT(compiled->cells().size(), 0u);
  std::remove(path.c_str());
}

TEST(Arena, AllocatesAlignedAndRunsFinalizersInReverse) {
  std::vector<int> order;
  struct Tracked {
    std::vector<int>* order;
    int id;
    Tracked(std::vector<int>* o, int i) : order(o), id(i) {}
    ~Tracked() { order->push_back(id); }
  };
  {
    Arena arena;
    void* p = arena.allocate(3, 1);
    void* q = arena.allocate(8, 8);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 8, 0u);
    arena.create<Tracked>(&order, 1);
    arena.create<Tracked>(&order, 2);
    arena.create<Tracked>(&order, 3);
    EXPECT_GT(arena.bytes_allocated(), 0u);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));  // newest-first
}

TEST(Arena, ResetReclaimsAndReusesChunks) {
  Arena arena;
  for (int i = 0; i < 1000; ++i) arena.create<std::string>("spacious enough to defeat SSO....");
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  for (int i = 0; i < 1000; ++i) arena.create<std::string>("spacious enough to defeat SSO....");
  EXPECT_LE(arena.chunk_count(), chunks);  // reused, not regrown
}

}  // namespace
}  // namespace rsg
