// Tests for the HPLA relocation baseline and the E10 comparison: both
// generators must produce crosspoint-equivalent PLAs, with HPLA paying for
// a larger sample and relocated cell copies.
#include "hpla/hpla.hpp"

#include <gtest/gtest.h>

#include "pla/pla_builder.hpp"
#include "support/error.hpp"

namespace rsg::hpla {
namespace {

class HplaTest : public ::testing::Test {
 protected:
  HplaTest() {
    install_pla_library(cells_);
    sample_ = &build_sample_pla(cells_);
  }

  CellTable cells_;
  const Cell* sample_ = nullptr;
};

TEST_F(HplaTest, DescriptionCompilesExpectedPitches) {
  const Description d = compile_description(*sample_);
  EXPECT_EQ(d.and_pitch_x, pla::kCellW);
  EXPECT_EQ(d.and_pitch_y, -pla::kCellH);  // rows grow downward
  EXPECT_EQ(d.or_pitch_x, pla::kCellW);
  EXPECT_EQ(d.connect_offset_x, pla::kCellW);
  EXPECT_EQ(d.or_offset_x, pla::kConnectW);
  EXPECT_EQ(d.inbuf_offset_y, 0);
  EXPECT_EQ(d.outbuf_offset_y, -pla::kCellH);
  // The user had to draw the full 2x2x2 PLA: 20+ instances.
  EXPECT_GE(d.sample_instance_count, 20u);
}

TEST_F(HplaTest, CompileRejectsNonPlaSamples) {
  Cell& not_pla = cells_.create("junk");
  not_pla.add_instance(&cells_.get("and-cell"), kIdentityPlacement);
  EXPECT_THROW(compile_description(not_pla), Error);
}

TEST_F(HplaTest, GeneratedPlaRecoversItsPersonality) {
  const pla::TruthTable table = pla::TruthTable::parse(
      "101 10\n"
      "0-1 01\n"
      "-10 11\n");
  const Description d = compile_description(*sample_);
  GenerateStats stats;
  const Cell& out = generate(cells_, d, table, "hpla-out", &stats);
  EXPECT_GT(stats.instances_placed, 0u);
  EXPECT_GT(stats.relocated_cell_copies, 0u);  // per-context copies (§1.2.2)
  EXPECT_EQ(pla::recover_truth_table(out, 3, 2, 3), table);
}

TEST_F(HplaTest, RsgAndHplaOutputsAreCrosspointEquivalent) {
  // The headline comparison: feed both generators the same personality and
  // recover identical truth tables from both layouts.
  const pla::TruthTable table = pla::TruthTable::random(4, 3, 5, 2024);

  const Description d = compile_description(*sample_);
  const Cell& hpla_out = generate(cells_, d, table, "hpla-out");
  const pla::TruthTable from_hpla = pla::recover_truth_table(hpla_out, 4, 3, 5);

  rsg::Generator generator;
  const rsg::GeneratorResult rsg_out = pla::generate_pla(generator, table);
  const pla::TruthTable from_rsg = pla::recover_truth_table(*rsg_out.top, 4, 3, 5);

  EXPECT_EQ(from_hpla, table);
  EXPECT_EQ(from_rsg, table);
  EXPECT_EQ(from_hpla, from_rsg);
}

TEST_F(HplaTest, RsgSampleIsSmallerThanHplaSample) {
  // §1.2.2: HPLA's sample "was actually larger than necessary and contained
  // redundant information". Compare what each tool requires the user to
  // draw: HPLA a full 2x2x2 PLA; the RSG a couple of interface examples.
  const Description d = compile_description(*sample_);

  rsg::Generator generator;
  const rsg::GeneratorResult rsg_out =
      pla::generate_pla(generator, pla::TruthTable::random(2, 2, 2, 1));
  EXPECT_LT(rsg_out.sample_stats.assembly_instances + 0u, d.sample_instance_count + 1u);
  EXPECT_GT(d.sample_instance_count, 19u);
}

TEST_F(HplaTest, RelocationCopiesGrowWithEachGeneratedPla) {
  // Every generation run clones the library cells for its own use — the
  // duplication the RSG's shared cell definitions avoid.
  const pla::TruthTable table = pla::TruthTable::random(3, 2, 3, 5);
  const Description d = compile_description(*sample_);
  GenerateStats s1;
  GenerateStats s2;
  generate(cells_, d, table, "pla1", &s1);
  generate(cells_, d, table, "pla2", &s2);
  EXPECT_EQ(s1.relocated_cell_copies, 8u);
  EXPECT_EQ(s2.relocated_cell_copies, 8u);  // fresh copies again for pla2
}

}  // namespace
}  // namespace rsg::hpla
