// End-to-end tests for the Ch. 5 evaluation: the Appendix B/C design runs
// through the full RSG pipeline, and the generated layout's mask placements
// are cross-checked against the architectural predicates of src/arch (E6,
// E19).
#include <gtest/gtest.h>

#include <map>

#include "arch/baugh_wooley.hpp"
#include "arch/retiming.hpp"
#include "io/param_file.hpp"
#include "layout/flatten.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

std::string mult_params(int size) {
  std::string params = read_text_file(designs_path("mult.par"));
  params += "\nasize = " + std::to_string(size) + "\n";
  return params;
}

GeneratorResult generate_multiplier(Generator& generator, int size) {
  return generator.run(read_text_file(designs_path("mult.sample")),
                       read_text_file(designs_path("mult.rsg")), mult_params(size));
}

TEST(Multiplier, AppendixBDesignRunsEndToEnd) {
  Generator generator;
  const GeneratorResult result = generate_multiplier(generator, 6);
  ASSERT_NE(result.top, nullptr);
  EXPECT_EQ(result.top->name(), "thewholething");
  EXPECT_FALSE(result.output.empty());
  // The hierarchy: inner array + three register files under the top cell.
  EXPECT_EQ(result.top->instances().size(), 4u);
  EXPECT_TRUE(generator.cells().contains("array"));
  EXPECT_TRUE(generator.cells().contains("topregs"));
  EXPECT_TRUE(generator.cells().contains("bottomregs"));
  EXPECT_TRUE(generator.cells().contains("rightregs"));
}

TEST(Multiplier, CoreCellCountMatchesArraySize) {
  Generator generator;
  const GeneratorResult result = generate_multiplier(generator, 6);
  std::map<std::string, int> counts;
  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    ++counts[fi.cell->name()];
  }
  EXPECT_EQ(counts["cell"], 36);            // 6x6 inner array
  EXPECT_EQ(counts["t1"] + counts["t2"], 36);  // one type mask per cell
  // Type II on the last column (5, excluding the shared corner cell which
  // is type I) and the last row (5): Figure 5.1.
  EXPECT_EQ(counts["t2"], 10);
  EXPECT_EQ(counts["clk1"] + counts["clk2"], 36);
  EXPECT_EQ(counts["tr"], 1 + 2 + 3 + 4 + 5 + 6);  // triangular input skew
  EXPECT_EQ(counts["br"], 6 + 5 + 4 + 3 + 2 + 1);
}

TEST(Multiplier, MaskPlacementMatchesArchitecturalPredicates) {
  // The load-bearing cross-check: for every type mask in the generated
  // layout, the mask kind at that grid position must equal what the
  // Baugh–Wooley predicate demands. Layout column xloc (1-based, from the
  // row start) maps to architecture x = xsize - xloc; row yloc to y =
  // yloc - 1.
  const int size = 6;
  Generator generator;
  const GeneratorResult result = generate_multiplier(generator, size);

  // Find all core cells and index them by grid position. The array builds
  // rows downward and columns rightward from the root; normalize by the
  // minimum observed coordinates.
  std::vector<Point> cores;
  std::vector<std::pair<Point, bool>> type_masks;  // position -> is_type2
  std::vector<std::pair<Point, bool>> clock_masks;  // position -> is_phi1
  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    const std::string& name = fi.cell->name();
    if (name == "cell") cores.push_back(fi.placement.location);
    if (name == "t1") type_masks.emplace_back(fi.placement.location, false);
    if (name == "t2") type_masks.emplace_back(fi.placement.location, true);
    if (name == "clk1") clock_masks.emplace_back(fi.placement.location, true);
    if (name == "clk2") clock_masks.emplace_back(fi.placement.location, false);
  }
  ASSERT_EQ(cores.size(), static_cast<std::size_t>(size * size));

  Point min{cores.front()};
  Point max{cores.front()};
  for (const Point p : cores) {
    min = {std::min(min.x, p.x), std::min(min.y, p.y)};
    max = {std::max(max.x, p.x), std::max(max.y, p.y)};
  }
  const Coord pitch_x = (max.x - min.x) / (size - 1);
  const Coord pitch_y = (max.y - min.y) / (size - 1);
  ASSERT_GT(pitch_x, 0);
  ASSERT_GT(pitch_y, 0);

  const arch::MultiplierSpec spec{size, size};
  ASSERT_EQ(type_masks.size(), static_cast<std::size_t>(size * size));
  for (const auto& [at, is_type2] : type_masks) {
    const int xloc = static_cast<int>((at.x - min.x) / pitch_x) + 1;  // 1-based column
    const int yloc = size - static_cast<int>((at.y - min.y) / pitch_y);  // rows grow down
    ASSERT_GE(xloc, 1);
    ASSERT_LE(xloc, size);
    // The design file places type II on the last column / last row except
    // their shared corner; map to the architecture frame.
    const arch::CellKind expected = arch::carry_save_cell_kind(spec, size - xloc, yloc - 1);
    EXPECT_EQ(is_type2, expected == arch::CellKind::kTypeII)
        << "mask at column " << xloc << " row " << yloc;
  }
  for (const auto& [at, is_phi1] : clock_masks) {
    const int xloc = static_cast<int>((at.x - min.x) / pitch_x) + 1;
    // mcell: even xloc -> clock1.
    EXPECT_EQ(is_phi1, xloc % 2 == 0) << "clock mask at column " << xloc;
  }
}

TEST(Multiplier, GenerationIsDeterministic) {
  Generator g1;
  Generator g2;
  const GeneratorResult r1 = generate_multiplier(g1, 4);
  const GeneratorResult r2 = generate_multiplier(g2, 4);
  EXPECT_EQ(r1.output, r2.output);
}

TEST(Multiplier, SizesScaleQuadratically) {
  Generator g4;
  Generator g8;
  const GeneratorResult r4 = generate_multiplier(g4, 4);
  const GeneratorResult r8 = generate_multiplier(g8, 8);
  const std::size_t boxes4 = r4.top->flattened_box_count();
  const std::size_t boxes8 = r8.top->flattened_box_count();
  // 4x -> quadrupled core content (registers grow sub-quadratically).
  EXPECT_GT(boxes8, 3 * boxes4);
  EXPECT_LT(boxes8, 5 * boxes4);
}

TEST(Multiplier, SampleIsRadicallySmallerThanLayout) {
  // E7 (Fig 5.5 vs 5.6): the information reduction of design-by-example.
  Generator generator;
  const GeneratorResult result = generate_multiplier(generator, 16);
  const std::size_t layout_instances = result.top->flattened_instance_count();
  EXPECT_EQ(result.sample_stats.assembly_instances, 26u);
  EXPECT_GT(layout_instances, 40u * result.sample_stats.assembly_instances);
}

TEST(Multiplier, RegisterStacksArePlacedOutsideTheArray) {
  Generator generator;
  const GeneratorResult result = generate_multiplier(generator, 4);
  const Cell& array = generator.cells().get("array");
  // Top registers strictly above the array rows, bottom strictly below,
  // right rows strictly to the right — derive the array bbox from an
  // array-only flatten and compare register positions in the top cell.
  Box array_bbox;
  bool first = true;
  std::optional<Placement> array_placement;
  for (const Instance& inst : result.top->instances()) {
    if (inst.cell == &array) array_placement = inst.placement;
  }
  ASSERT_TRUE(array_placement.has_value());
  array_bbox = array_placement->apply(array.bounding_box());
  (void)first;

  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    if (fi.cell->name() == "tr") {
      EXPECT_GE(fi.placement.location.y, array_bbox.hi.y) << "top register inside array";
    } else if (fi.cell->name() == "rr") {
      EXPECT_GE(fi.placement.location.x, array_bbox.hi.x) << "right register inside array";
    }
  }
}


TEST(Multiplier, PipeliningDegreeShapesTheRegisterStacks) {
  // The design file's skewdepth = ceil(i/beta): beta=1 gives the triangular
  // bit-systolic stacks (Fig 5.2a), beta=2 halves them (Fig 5.2b) — and
  // matches the retiming engine's input_skew table.
  Generator generator;
  std::string params = mult_params(6);
  params += "\nbeta = 2\n";
  const GeneratorResult result =
      generator.run(read_text_file(designs_path("mult.sample")),
                    read_text_file(designs_path("mult.rsg")), params);
  std::map<std::string, int> counts;
  for (const FlatInstance& fi : flatten_instances(*result.top)) ++counts[fi.cell->name()];
  // ceil(i/2) for i=1..6: 1+1+2+2+3+3 = 12 top registers (vs 21 at beta=1).
  EXPECT_EQ(counts["tr"], 12);
  EXPECT_EQ(counts["br"], 12);

  // Cross-check against the retiming engine: total skew registers per
  // operand equal the sum of its skew table (+1 per column: a stack of
  // depth ceil(i/beta) holds the stage-0 register too).
  const auto config = arch::compute_register_configuration({6, 6}, 2);
  int skew_sum = 0;
  for (const int d : config.input_skew_b) skew_sum += d;
  EXPECT_EQ(counts["tr"], skew_sum + 6);
}

TEST(Multiplier, MissingInterfaceProducesActionableError) {
  Generator generator;
  std::string params = mult_params(4);
  params += "\nhinum = 9\n";  // no such interface in the sample
  try {
    generator.run(read_text_file(designs_path("mult.sample")),
                  read_text_file(designs_path("mult.rsg")), params);
    FAIL() << "expected LayoutError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("#9"), std::string::npos);
  }
}

}  // namespace
}  // namespace rsg
