// Equivalence and robustness tests for the sparse revised simplex: the new
// engine must reproduce the dense tableau baseline's objectives on the
// leaf-compaction workloads it was built to scale (and its geometry where
// the optimum is unique), stay exact on randomized small LPs, and survive
// known-degenerate systems through the Bland anti-cycling fallback.
#include <gtest/gtest.h>

#include <random>

#include "compact/leaf_compactor.hpp"
#include "compact/simplex.hpp"
#include "compact/synth_design.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

TEST(SparseSimplex, MatchesDenseObjectiveOnSeededLeafLibraries) {
  // The acceptance workload: the same synthetic libraries bench_leaf_scaling
  // sweeps, across seeds and sizes. Identical LpProblem, both engines under
  // both pricing rules, the objectives must agree to relative 1e-6.
  for (const std::uint32_t seed : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    const int num_cells = 2 + static_cast<int>(seed % 4) * 2;
    const SynthLeafLibrary lib = make_leaf_library(num_cells, 6, seed);
    const LeafLpModel model = build_leaf_lp(lib.cells, lib.interfaces, lib.cell_names,
                                            lib.pitch_specs, CompactionRules::mosis());
    const LpSolution dense = solve_lp(model.lp, LpMethod::kDenseTableau);
    ASSERT_TRUE(dense.feasible && dense.bounded) << "seed " << seed;
    for (const LpPricing pricing : {LpPricing::kDantzig, LpPricing::kDevex}) {
      const LpSolution sparse = solve_lp(model.lp, LpMethod::kSparseRevised, pricing);
      ASSERT_TRUE(sparse.feasible && sparse.bounded) << "seed " << seed;
      EXPECT_NEAR(sparse.objective, dense.objective,
                  1e-6 * (1.0 + std::abs(dense.objective)))
          << "seed " << seed << " pricing " << static_cast<int>(pricing);
    }
  }
}

TEST(SparseSimplex, DevexMatchesDenseBitForBitOnBenchLeafLibraries) {
  // The PR 4 acceptance pin: on the exact libraries bench_leaf_scaling
  // sweeps (seed 7, 8 boxes per cell), devex must price its way to the
  // BIT-IDENTICAL objective the dense Dantzig tableau reaches, and never
  // spend more pivots than sparse Dantzig. On these near-unimodular
  // compaction matrices every pivot element is +-1, all arithmetic is
  // exact, and phase 1 needs one pivot per artificial row — a floor Dantzig
  // already sits on — so devex ties the pivot count here (equality) while
  // genuinely reducing it on heterogeneous LPs (see
  // DevexReducesPivotsOnHeterogeneousLps).
  for (const int num_cells : {16, 32}) {
    const SynthLeafLibrary lib = make_leaf_library(num_cells, 8, 7);
    const LeafLpModel model = build_leaf_lp(lib.cells, lib.interfaces, lib.cell_names,
                                            lib.pitch_specs, CompactionRules::mosis());
    const LpSolution dense = solve_lp(model.lp, LpMethod::kDenseTableau);
    const LpSolution dantzig = solve_lp(model.lp, LpMethod::kSparseRevised, LpPricing::kDantzig);
    const LpSolution devex = solve_lp(model.lp, LpMethod::kSparseRevised, LpPricing::kDevex);
    ASSERT_TRUE(dense.feasible && dense.bounded) << num_cells << " cells";
    ASSERT_TRUE(devex.feasible && devex.bounded) << num_cells << " cells";
    EXPECT_EQ(devex.objective, dense.objective) << num_cells << " cells";
    EXPECT_EQ(devex.objective, dantzig.objective) << num_cells << " cells";
    EXPECT_LE(devex.stats.iterations, dantzig.stats.iterations) << num_cells << " cells";
  }
}

TEST(SparseSimplex, DevexReducesPivotsOnHeterogeneousLps) {
  // Where column norms differ, the reference framework pays off: across a
  // seeded ensemble of random LPs devex must spend strictly fewer total
  // pivots than Dantzig while agreeing on every objective.
  long dantzig_pivots = 0;
  long devex_pivots = 0;
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 1);
    std::uniform_int_distribution<int> dim(4, 24);
    std::uniform_real_distribution<double> coeff(-3.0, 3.0);
    std::uniform_real_distribution<double> cost(0.0, 2.0);
    LpProblem p;
    p.num_vars = dim(rng);
    for (int j = 0; j < p.num_vars; ++j) p.objective.push_back(cost(rng));
    const int rows = dim(rng);
    for (int i = 0; i < rows; ++i) {
      LpConstraint c;
      for (int j = 0; j < p.num_vars; ++j) {
        const double v = coeff(rng);
        if (std::abs(v) > 1.0) c.terms.emplace_back(j, v);
      }
      c.rhs = coeff(rng);
      p.constraints.push_back(std::move(c));
    }
    const LpSolution dantzig = solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDantzig);
    const LpSolution devex = solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDevex);
    ASSERT_EQ(dantzig.feasible, devex.feasible) << "seed " << seed;
    if (!dantzig.feasible) continue;
    ASSERT_EQ(dantzig.bounded, devex.bounded) << "seed " << seed;
    if (!dantzig.bounded) continue;
    EXPECT_NEAR(devex.objective, dantzig.objective,
                1e-6 * (1.0 + std::abs(dantzig.objective)))
        << "seed " << seed;
    dantzig_pivots += dantzig.stats.iterations;
    devex_pivots += devex.stats.iterations;
  }
  EXPECT_LT(devex_pivots, dantzig_pivots);
}

TEST(SparseSimplex, DualMatchesDenseBitForBitWithZeroPhaseOnePivots) {
  // THE acceptance pin of the dual engine, on the exact libraries
  // bench_leaf_scaling sweeps (seed 7, 8 boxes per cell): the compaction
  // objective is emitted componentwise nonnegative, so the dual must run
  // start to finish with NO phase-1 pivots, NO primal fallback, reach the
  // BIT-IDENTICAL objective of the dense Dantzig tableau, and spend at
  // most half the primal Dantzig pivot count.
  for (const int num_cells : {16, 32}) {
    const SynthLeafLibrary lib = make_leaf_library(num_cells, 8, 7);
    const LeafLpModel model = build_leaf_lp(lib.cells, lib.interfaces, lib.cell_names,
                                            lib.pitch_specs, CompactionRules::mosis());
    const LpSolution dense = solve_lp(model.lp, LpMethod::kDenseTableau);
    const LpSolution primal = solve_lp(model.lp, LpMethod::kSparseRevised);
    const LpSolution dual = solve_lp(model.lp, LpMethod::kSparseDual);
    ASSERT_TRUE(dense.feasible && dense.bounded) << num_cells << " cells";
    ASSERT_TRUE(dual.feasible && dual.bounded) << num_cells << " cells";
    EXPECT_EQ(dual.objective, dense.objective) << num_cells << " cells";
    EXPECT_EQ(dual.stats.phase1_pivots, 0) << num_cells << " cells";
    EXPECT_EQ(dual.stats.dual_fallbacks, 0) << num_cells << " cells";
    EXPECT_EQ(dual.stats.dual_pivots, dual.stats.iterations) << num_cells << " cells";
    EXPECT_GT(primal.stats.phase1_pivots, 0) << num_cells << " cells";
    EXPECT_LE(2 * dual.stats.iterations, primal.stats.iterations) << num_cells << " cells";
  }
}

TEST(SparseSimplex, DualMatchesDenseObjectiveOnSeededLeafLibraries) {
  // The seeded-ensemble version of the pin: every library the primal
  // equivalence test replays, solved by the dual engine — same objective,
  // never a phase-1 pivot, never a fallback.
  for (const std::uint32_t seed : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    const int num_cells = 2 + static_cast<int>(seed % 4) * 2;
    const SynthLeafLibrary lib = make_leaf_library(num_cells, 6, seed);
    const LeafLpModel model = build_leaf_lp(lib.cells, lib.interfaces, lib.cell_names,
                                            lib.pitch_specs, CompactionRules::mosis());
    const LpSolution dense = solve_lp(model.lp, LpMethod::kDenseTableau);
    const LpSolution dual = solve_lp(model.lp, LpMethod::kSparseDual);
    ASSERT_TRUE(dense.feasible && dense.bounded) << "seed " << seed;
    ASSERT_TRUE(dual.feasible && dual.bounded) << "seed " << seed;
    EXPECT_NEAR(dual.objective, dense.objective, 1e-6 * (1.0 + std::abs(dense.objective)))
        << "seed " << seed;
    EXPECT_EQ(dual.stats.phase1_pivots, 0) << "seed " << seed;
    EXPECT_EQ(dual.stats.dual_fallbacks, 0) << "seed " << seed;
  }
}

TEST(SparseSimplex, DualFallsBackToPrimalOnItsOwnTerritory) {
  // min -x with x unconstrained above: the negative-cost column gets a
  // WORKING upper bound (no Lemke bound row exists anymore), the extended
  // optimum rides that bound, and the engine must hand the problem to the
  // primal path — which proves it unbounded — while recording the fallback.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  const LpSolution s = solve_lp(p, LpMethod::kSparseDual);
  ASSERT_TRUE(s.feasible);
  EXPECT_FALSE(s.bounded);
  EXPECT_EQ(s.stats.dual_fallbacks, 1);
  // The primary counters describe the authoritative primal solve alone:
  // no dual pivots may leak into them after the decline.
  EXPECT_EQ(s.stats.dual_pivots, 0);
}

TEST(SparseSimplex, DeclinedDualWorkIsReportedUnderDistinctCounters) {
  // Regression (this PR): the DECLINE->primal fallback used to fold the
  // abandoned dual attempt's counters into the primal totals, so
  // `iterations` and `refactorizations` described neither solve. Build a
  // problem where the dual genuinely iterates before discovering its
  // optimum rides a working bound: min -x0 + x1 with x0 boxed by rows and
  // a forcing row that needs dual repair first, plus an uncovered
  // negative-cost column x2 whose working bound carries the optimum.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-1.0, 1.0, -1.0};
  p.constraints = {
      {{{0, 1.0}}, 5.0},               // x0 <= 5
      {{{0, -1.0}, {1, 1.0}}, -2.0},   // x0 - x1 >= 2: forces dual pivots
  };
  const LpSolution s = solve_lp(p, LpMethod::kSparseDual);
  ASSERT_TRUE(s.feasible);
  EXPECT_FALSE(s.bounded);  // x2 is a free ray
  ASSERT_EQ(s.stats.dual_fallbacks, 1);
  // The abandoned attempt did real work, and that work is visible — but
  // under the declined_* counters, not the primal's.
  EXPECT_GT(s.stats.declined_dual_pivots, 0);
  EXPECT_GE(s.stats.declined_wall_ms, 0.0);
  EXPECT_EQ(s.stats.dual_pivots, 0);
  // The split, asserted exactly: the fallback's primary counters must be
  // INDISTINGUISHABLE from a pure primal solve of the same problem —
  // nothing of the dual attempt folded in.
  const LpSolution primal = solve_lp(p, LpMethod::kSparseRevised);
  EXPECT_EQ(s.stats.iterations, primal.stats.iterations);
  EXPECT_EQ(s.stats.refactorizations, primal.stats.refactorizations);
  EXPECT_EQ(s.stats.phase1_pivots, primal.stats.phase1_pivots);
}

TEST(SparseSimplex, DualDeclinesNearSingularPivotInsteadOfTakingIt) {
  // Regression (this PR): the single-pass ratio test accepted any pivot
  // with |alpha| > kEps = 1e-9. On this instance the Harris window admits
  // only the alpha = -1e-8 candidate (the well-scaled column's ratio lies
  // far outside the relaxed bound), so the old test pivoted on 1e-8 and
  // seeded the factorization with a near-singular update. The two-pass
  // test's pivot-magnitude floor (kStablePivotTol = 1e-7) must DECLINE the
  // solve instead; the primal fallback then reaches the exact optimum
  // x0 = 1e8, objective 0.01, which pins the verdict against the dense
  // baseline.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1e-10, 20.0};
  p.constraints = {
      {{{0, -1e-8}, {1, -1.0}}, -1.0},  // 1e-8 x0 + x1 >= 1
  };
  const LpSolution dense = solve_lp(p, LpMethod::kDenseTableau);
  ASSERT_TRUE(dense.feasible && dense.bounded);
  const LpSolution dual = solve_lp(p, LpMethod::kSparseDual);
  ASSERT_TRUE(dual.feasible && dual.bounded);
  EXPECT_EQ(dual.stats.dual_fallbacks, 1);  // declined, not pivoted
  EXPECT_EQ(dual.stats.declined_dual_pivots, 0);
  EXPECT_NEAR(dual.objective, dense.objective, 1e-9 * (1.0 + std::abs(dense.objective)));
  EXPECT_NEAR(dual.objective, 0.01, 1e-9);
}

TEST(SparseSimplex, DualHandlesMixedSignObjectivesNatively) {
  // The bounded-variable ratio test's core claim: a mixed-sign objective
  // whose negative-cost columns are all covered by finite user bounds
  // solves start to finish in the dual — no fallback, no phase-1 pivots —
  // and bit-agrees with the dense baseline on this all-integer instance.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-2.0, 0.5, -1.0};
  p.upper = {4.0, kLpUnbounded, 3.0};
  p.constraints = {
      {{{0, 1.0}, {1, -1.0}}, 2.0},   // x0 - x1 <= 2
      {{{0, 1.0}, {2, 1.0}}, 6.0},    // x0 + x2 <= 6
  };
  const LpSolution dense = solve_lp(p, LpMethod::kDenseTableau);
  ASSERT_TRUE(dense.feasible && dense.bounded);
  const LpSolution dual = solve_lp(p, LpMethod::kSparseDual);
  ASSERT_TRUE(dual.feasible && dual.bounded);
  EXPECT_EQ(dual.objective, dense.objective);
  EXPECT_EQ(dual.stats.dual_fallbacks, 0);
  EXPECT_EQ(dual.stats.phase1_pivots, 0);
  // x0 rides its finite bound at the optimum (cost -2 dominates): the
  // at-upper resting state, not a row, carries the bound.
  EXPECT_NEAR(dual.x[0], 4.0, 1e-9);
  EXPECT_NEAR(dual.x[2], 2.0, 1e-9);
}

TEST(SparseSimplex, StatsResetBetweenSolvesOnReusedSolution) {
  // Regression (this PR): the engine accumulated LpStats into whatever
  // `solution` it was handed, so reusing an LpSolution across solve calls
  // doubled the refactorization counter. The chain problem below crosses
  // the refactorization interval, which makes the accumulation observable:
  // a second solve into the SAME solution object must report the same
  // counts as the first, not their sum.
  LpProblem p;
  constexpr int kVars = 400;
  p.num_vars = kVars;
  p.objective.assign(kVars, 0.0);
  p.objective.back() = 1.0;
  p.constraints.push_back({{{0, -1.0}}, -1.0});
  for (int v = 1; v < kVars; ++v) {
    p.constraints.push_back({{{v - 1, 1.0}, {v, -1.0}}, -1.0});
  }
  LpSolution reused;
  detail::solve_lp_sparse_into(p, LpPricing::kDantzig, reused);
  const LpStats first = reused.stats;
  ASSERT_GT(first.refactorizations, 0);
  detail::solve_lp_sparse_into(p, LpPricing::kDantzig, reused);
  EXPECT_EQ(reused.stats.refactorizations, first.refactorizations);
  EXPECT_EQ(reused.stats.iterations, first.iterations);

  detail::solve_lp_sparse_dual_into(p, LpPricing::kDantzig, reused);
  const LpStats dual_first = reused.stats;
  detail::solve_lp_sparse_dual_into(p, LpPricing::kDantzig, reused);
  EXPECT_EQ(reused.stats.refactorizations, dual_first.refactorizations);
  EXPECT_EQ(reused.stats.iterations, dual_first.iterations);
  EXPECT_EQ(reused.stats.dual_pivots, dual_first.dual_pivots);

  // The reset covers every field, not just stats: an infeasible solve into
  // the same (feasible, x-populated) solution must not leak the previous
  // x / objective / bounded values through its early exit.
  LpProblem infeasible;
  infeasible.num_vars = 1;
  infeasible.objective = {1.0};
  infeasible.constraints = {{{{0, 1.0}}, 1.0}, {{{0, -1.0}}, -3.0}};
  for (const bool dual : {false, true}) {
    detail::solve_lp_sparse_into(p, LpPricing::kDantzig, reused);
    ASSERT_TRUE(reused.feasible && !reused.x.empty());
    if (dual) {
      detail::solve_lp_sparse_dual_into(infeasible, LpPricing::kDantzig, reused);
    } else {
      detail::solve_lp_sparse_into(infeasible, LpPricing::kDantzig, reused);
    }
    EXPECT_FALSE(reused.feasible);
    EXPECT_TRUE(reused.bounded);
    EXPECT_TRUE(reused.x.empty());
    EXPECT_EQ(reused.objective, 0.0);
  }
}

TEST(SparseSimplex, MatchesDenseGeometryOnUniqueOptimum) {
  // End to end through the leaf compactor on the Figure 6.3-style cell of
  // leafcell_test, whose optimum is unique (rigid widths force every edge).
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  a.add_box(Layer::kMetal1, Box(30, 0, 40, 4));
  interfaces.declare("a", "a", 1, Interface{{60, 0}, Orientation::kNorth});
  const std::vector<PitchSpec> specs = {{"a", "a", 1, 1.0}};

  const LeafResult dense = compact_leaf_cells(cells, interfaces, {"a"}, specs,
                                              CompactionRules::mosis(), 1e-3, {},
                                              LpMethod::kDenseTableau);
  const LeafResult sparse = compact_leaf_cells(cells, interfaces, {"a"}, specs,
                                               CompactionRules::mosis(), 1e-3, {},
                                               LpMethod::kSparseRevised);
  // The default engine is now the dual (LpOptions{}); the unique optimum
  // forces it onto the identical geometry.
  const LeafResult dual =
      compact_leaf_cells(cells, interfaces, {"a"}, specs, CompactionRules::mosis());
  EXPECT_EQ(dense.pitches, sparse.pitches);
  EXPECT_EQ(dense.cells.at("a"), sparse.cells.at("a"));
  EXPECT_NEAR(dense.objective, sparse.objective, 1e-6);
  EXPECT_EQ(dense.pitches, dual.pitches);
  EXPECT_EQ(dense.cells.at("a"), dual.cells.at("a"));
  EXPECT_EQ(dual.lp_stats.phase1_pivots, 0);
  EXPECT_EQ(dual.lp_stats.dual_fallbacks, 0);
}

TEST(SparseSimplex, MatchesDenseOnRandomSmallLps) {
  // Fuzz: random bounded-feasible LPs (nonnegative objective keeps them
  // bounded; mixed-sign rhs exercises phase 1 and the artificial machinery).
  for (std::uint32_t seed = 0; seed < 60; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 1);
    std::uniform_int_distribution<int> dim(1, 8);
    std::uniform_real_distribution<double> coeff(-3.0, 3.0);
    std::uniform_real_distribution<double> cost(0.0, 2.0);

    LpProblem p;
    p.num_vars = dim(rng);
    for (int j = 0; j < p.num_vars; ++j) p.objective.push_back(cost(rng));
    const int rows = dim(rng);
    for (int i = 0; i < rows; ++i) {
      LpConstraint c;
      for (int j = 0; j < p.num_vars; ++j) {
        const double v = coeff(rng);
        if (std::abs(v) > 1.0) c.terms.emplace_back(j, v);
      }
      c.rhs = coeff(rng);
      p.constraints.push_back(std::move(c));
    }

    const LpSolution dense = solve_lp(p, LpMethod::kDenseTableau);
    for (const LpPricing pricing : {LpPricing::kDantzig, LpPricing::kDevex}) {
      const LpSolution sparse = solve_lp(p, LpMethod::kSparseRevised, pricing);
      ASSERT_EQ(dense.feasible, sparse.feasible) << "seed " << seed;
      if (!dense.feasible) continue;
      ASSERT_EQ(dense.bounded, sparse.bounded) << "seed " << seed;
      if (!dense.bounded) continue;
      EXPECT_NEAR(sparse.objective, dense.objective,
                  1e-6 * (1.0 + std::abs(dense.objective)))
          << "seed " << seed << " pricing " << static_cast<int>(pricing);
    }
  }
}

TEST(SparseSimplex, BlandFallbackEngagesOnDegenerateStreak) {
  // A known-degenerate plateau: k rows x_{k+1} <= x_i are all tight at the
  // origin, so the walk to the optimum is a long chain of zero-step pivots.
  // The streak guard must flip both engines to Bland's rule (observable in
  // the stats) and both must still reach the true optimum x = 1.
  LpProblem p;
  constexpr int kChain = 20;
  p.num_vars = kChain + 1;
  p.objective.assign(kChain + 1, 0.0);
  p.objective.back() = -1.0;  // max x_{k+1}
  for (int i = 0; i < kChain; ++i) {
    p.constraints.push_back({{{kChain, 1.0}, {i, -1.0}}, 0.0});  // x_{k+1} <= x_i
    p.constraints.push_back({{{i, 1.0}}, 1.0});                  // x_i <= 1
  }
  p.constraints.push_back({{{kChain, 1.0}}, 1.0});  // x_{k+1} <= 1
  for (const LpMethod method : {LpMethod::kDenseTableau, LpMethod::kSparseRevised}) {
    const LpSolution s = solve_lp(p, method);
    ASSERT_TRUE(s.feasible);
    ASSERT_TRUE(s.bounded);
    EXPECT_NEAR(s.objective, -1.0, 1e-6);
    EXPECT_GE(s.stats.degenerate_pivots, kDegeneratePivotStreak);
    EXPECT_GT(s.stats.bland_pivots, 0);
  }
  // The anti-cycling fallback is pricing-independent: devex must survive
  // the same plateau and land on the same optimum.
  const LpSolution devex = solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDevex);
  ASSERT_TRUE(devex.feasible);
  ASSERT_TRUE(devex.bounded);
  EXPECT_NEAR(devex.objective, -1.0, 1e-6);
}

TEST(SparseSimplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling construction, the canonical known-degenerate
  // regression input: whatever pricing path the engines take, they must
  // terminate at the optimum instead of looping.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-0.75, 150.0, -0.02};
  p.constraints = {
      {{{0, 0.25}, {1, -60.0}, {2, -0.04}}, 0.0},
      {{{0, 0.5}, {1, -90.0}, {2, -0.02}}, 0.0},
      {{{2, 1.0}}, 1.0},
  };
  for (const LpMethod method : {LpMethod::kDenseTableau, LpMethod::kSparseRevised}) {
    const LpSolution s = solve_lp(p, method);
    ASSERT_TRUE(s.feasible);
    ASSERT_TRUE(s.bounded);
    EXPECT_NEAR(s.objective, -0.05, 1e-6);
    EXPECT_GT(s.stats.degenerate_pivots, 0);
  }
}

TEST(SparseSimplex, RefactorizationSurvivesLongRuns) {
  // A long difference-constraint chain forces enough pivots to cross the
  // refactorization interval several times; the optimum (the chain length)
  // pins the answer regardless.
  LpProblem p;
  constexpr int kVars = 400;
  p.num_vars = kVars;
  p.objective.assign(kVars, 0.0);
  p.objective.back() = 1.0;
  p.constraints.push_back({{{0, -1.0}}, -1.0});  // x0 >= 1
  for (int v = 1; v < kVars; ++v) {
    p.constraints.push_back({{{v - 1, 1.0}, {v, -1.0}}, -1.0});  // x_v >= x_{v-1} + 1
  }
  const LpSolution s = solve_lp(p, LpMethod::kSparseRevised);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.objective, static_cast<double>(kVars), 1e-6);
  EXPECT_GT(s.stats.refactorizations, 0);
}

}  // namespace
}  // namespace rsg::compact
