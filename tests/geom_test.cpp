// Tests for boxes and placements: the affine isometry semantics of §2.1.
#include <gtest/gtest.h>

#include "geom/box.hpp"
#include "geom/transform.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

TEST(Box, NormalizesCorners) {
  const Box b(Point{10, 20}, Point{2, 4});
  EXPECT_EQ(b.lo, (Point{2, 4}));
  EXPECT_EQ(b.hi, (Point{10, 20}));
  EXPECT_EQ(b.width(), 8);
  EXPECT_EQ(b.height(), 16);
  EXPECT_EQ(b.area(), 128);
}

TEST(Box, ContainsIsInclusive) {
  const Box b(0, 0, 10, 10);
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_FALSE(b.contains({11, 5}));
  EXPECT_FALSE(b.contains({5, -1}));
}

TEST(Box, IntersectsIsExclusiveOfSharedEdges) {
  const Box a(0, 0, 10, 10);
  EXPECT_TRUE(a.intersects(Box(5, 5, 15, 15)));
  EXPECT_FALSE(a.intersects(Box(10, 0, 20, 10)));  // shared edge only
  EXPECT_TRUE(a.abuts_or_intersects(Box(10, 0, 20, 10)));
  EXPECT_FALSE(a.abuts_or_intersects(Box(11, 0, 20, 10)));
}

TEST(Box, IntersectionAndUnion) {
  const Box a(0, 0, 10, 10);
  const Box b(4, 6, 20, 20);
  EXPECT_EQ(a.intersection(b), Box(4, 6, 10, 10));
  EXPECT_EQ(a.bounding_union(b), Box(0, 0, 20, 20));
  EXPECT_TRUE(a.intersection(Box(11, 11, 12, 12)).empty());
}

TEST(Layer, NamesRoundTrip) {
  for (int i = 0; i < kNumLayers; ++i) {
    const Layer layer = static_cast<Layer>(i);
    EXPECT_EQ(parse_layer(layer_name(layer)), layer);
  }
  EXPECT_THROW(parse_layer("unobtainium"), Error);
}

TEST(Placement, AppliesOrientationThenTranslation) {
  // Instance at L=(100,50), O=West: p -> L + O(p).
  const Placement p{{100, 50}, Orientation::kWest};
  EXPECT_EQ(p.apply(Point{0, 0}), (Point{100, 50}));  // origin lands on L
  EXPECT_EQ(p.apply(Point{3, 7}), (Point{100 - 7, 50 + 3}));
}

TEST(Placement, BoxApplicationRenormalizes) {
  const Placement p{{0, 0}, Orientation::kSouth};
  EXPECT_EQ(p.apply(Box(1, 2, 5, 9)), Box(-5, -9, -1, -2));
}

class PlacementPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Placement pa() const {
    return {{17, -4}, Orientation::from_index(std::get<0>(GetParam()))};
  }
  Placement pb() const {
    return {{-9, 33}, Orientation::from_index(std::get<1>(GetParam()))};
  }
};

TEST_P(PlacementPropertyTest, ComposeMatchesSequentialApplication) {
  const Point samples[] = {{0, 0}, {1, 0}, {0, 1}, {12, -7}};
  for (const Point p : samples) {
    EXPECT_EQ(pa().compose(pb()).apply(p), pa().apply(pb().apply(p)));
  }
}

TEST_P(PlacementPropertyTest, InverseUndoesApplication) {
  const Point samples[] = {{0, 0}, {5, 9}, {-3, 14}};
  for (const Point p : samples) {
    EXPECT_EQ(pa().inverse().apply(pa().apply(p)), p);
    EXPECT_EQ(pa().apply(pa().inverse().apply(p)), p);
  }
}

TEST_P(PlacementPropertyTest, InverseOfComposeIsReversedCompose) {
  EXPECT_EQ(pa().compose(pb()).inverse(), pb().inverse().compose(pa().inverse()));
}

INSTANTIATE_TEST_SUITE_P(AllOrientationPairs, PlacementPropertyTest,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

}  // namespace
}  // namespace rsg
