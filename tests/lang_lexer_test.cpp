// Lexer tests: token classes, indexed-variable dots, comments, errors.
#include "lang/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rsg::lang {
namespace {

std::vector<Token::Kind> kinds(const std::string& source) {
  std::vector<Token::Kind> result;
  for (const Token& t : tokenize(source)) result.push_back(t.kind);
  return result;
}

TEST(Lexer, BasicTokens) {
  const auto tokens = tokenize("(+ 1 23)");
  ASSERT_EQ(tokens.size(), 6u);  // ( + 1 23 ) END
  EXPECT_EQ(tokens[0].kind, Token::Kind::kLParen);
  EXPECT_EQ(tokens[1].kind, Token::Kind::kSymbol);
  EXPECT_EQ(tokens[1].text, "+");
  EXPECT_EQ(tokens[2].number, 1);
  EXPECT_EQ(tokens[3].number, 23);
  EXPECT_EQ(tokens[4].kind, Token::Kind::kRParen);
  EXPECT_EQ(tokens[5].kind, Token::Kind::kEnd);
}

TEST(Lexer, SymbolsWithOperatorsAndHyphens) {
  const auto tokens = tokenize("mk_instance basic-cell // >= /=");
  EXPECT_EQ(tokens[0].text, "mk_instance");
  EXPECT_EQ(tokens[1].text, "basic-cell");
  EXPECT_EQ(tokens[2].text, "//");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[4].text, "/=");
}

TEST(Lexer, NegativeNumbersVersusMinusSymbol) {
  const auto tokens = tokenize("(- -5 x)");
  EXPECT_EQ(tokens[1].text, "-");
  EXPECT_EQ(tokens[2].kind, Token::Kind::kNumber);
  EXPECT_EQ(tokens[2].number, -5);
}

TEST(Lexer, DotsAreSeparateTokens) {
  const auto tokens = tokenize("l.3 c.(- i 1)");
  // l . 3 c . ( - i 1 ) END
  EXPECT_EQ(kinds("l.3"),
            (std::vector<Token::Kind>{Token::Kind::kSymbol, Token::Kind::kDot,
                                      Token::Kind::kNumber, Token::Kind::kEnd}));
  EXPECT_EQ(tokens[4].kind, Token::Kind::kDot);
  EXPECT_EQ(tokens[5].kind, Token::Kind::kLParen);
}

TEST(Lexer, StringsAndComments) {
  const auto tokens = tokenize("(mk_cell \"the whole thing\" x) ; trailing comment\n42");
  EXPECT_EQ(tokens[1].text, "mk_cell");
  EXPECT_EQ(tokens[2].kind, Token::Kind::kString);
  EXPECT_EQ(tokens[2].text, "the whole thing");
  EXPECT_EQ(tokens[5].number, 42);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("(a\n  b)");
  EXPECT_EQ(tokens[1].line, 1);
  EXPECT_EQ(tokens[1].column, 2);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(tokenize("\"unterminated"), LangError);
  EXPECT_THROW(tokenize("\"multi\nline\""), LangError);
  EXPECT_THROW(tokenize("12abc"), LangError);
  EXPECT_THROW(tokenize("@"), LangError);
}

TEST(Lexer, EmptyInputYieldsOnlyEnd) {
  const auto tokens = tokenize("  ; just a comment\n");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kEnd);
}

}  // namespace
}  // namespace rsg::lang
