// Tests for the RAM generator (designs/ram.*): structure, DRC cleanliness,
// net/device extraction, and scaling — the §1.1 RAM built on the same
// engine as the PLA and the multiplier.
#include <gtest/gtest.h>

#include <map>

#include "extract/extractor.hpp"
#include "io/param_file.hpp"
#include "layout/design_rules.hpp"
#include "layout/flatten.hpp"
#include "rsg/generator.hpp"

namespace rsg {
namespace {

GeneratorResult generate_ram(Generator& generator, int words, int bits) {
  std::string params = read_text_file(designs_path("ram.par"));
  params += "\nwords = " + std::to_string(words) + "\nbits = " + std::to_string(bits) + "\n";
  return generator.run(read_text_file(designs_path("ram.sample")),
                       read_text_file(designs_path("ram.rsg")), params);
}

TEST(Ram, StructureMatchesParameters) {
  Generator generator;
  const GeneratorResult result = generate_ram(generator, 8, 16);
  ASSERT_EQ(result.top->name(), "ram");
  std::map<std::string, int> counts;
  for (const FlatInstance& fi : flatten_instances(*result.top)) ++counts[fi.cell->name()];
  EXPECT_EQ(counts["bit"], 8 * 16);
  EXPECT_EQ(counts["wld"], 8);
  EXPECT_EQ(counts["pre"], 16);
  EXPECT_EQ(counts["sense"], 16);
}

TEST(Ram, PeripheryLandsOnTheRightSides) {
  Generator generator;
  const GeneratorResult result = generate_ram(generator, 4, 4);
  Box core;
  bool first = true;
  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    if (fi.cell->name() != "bit") continue;
    const Box b = fi.placement.apply(fi.cell->bounding_box());
    core = first ? b : core.bounding_union(b);
    first = false;
  }
  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    const Box b = fi.placement.apply(fi.cell->bounding_box());
    if (fi.cell->name() == "pre") {
      EXPECT_GE(b.lo.y, core.hi.y) << "pre below array top";
    }
    if (fi.cell->name() == "sense") {
      EXPECT_LE(b.hi.y, core.lo.y) << "sense above array bottom";
    }
    if (fi.cell->name() == "wld") {
      EXPECT_LE(b.hi.x, core.lo.x) << "driver inside array";
    }
  }
}

TEST(Ram, GeneratedLayoutIsDesignRuleClean) {
  Generator generator;
  const GeneratorResult result = generate_ram(generator, 4, 6);
  const auto violations =
      check_design_rules(flatten_boxes(*result.top), DesignRules::mosis_lambda());
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, first: "
                                  << (violations.empty() ? "" : violations.front().rule);
}

TEST(Ram, ExtractionSeesRowsColumnsAndCells) {
  // One storage device per bit cell plus one per wordline driver; one
  // bitline net per column (bit metal + pre metal + sense metal fused).
  Generator generator;
  const int words = 4;
  const int bits = 6;
  const GeneratorResult result = generate_ram(generator, words, bits);
  const extract::Netlist netlist = extract::extract(flatten_boxes(*result.top));
  EXPECT_EQ(netlist.device_count(), static_cast<std::size_t>(words * bits + words));

  // Count distinct nets among bitline metal boxes: exactly `bits`.
  const auto boxes = flatten_boxes(*result.top);
  std::map<std::size_t, int> metal_nets;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].layer == Layer::kMetal1) ++metal_nets[netlist.box_net[i]];
  }
  EXPECT_EQ(metal_nets.size(), static_cast<std::size_t>(bits));
  // And wordline poly nets: one per word (driver stub + row wordlines).
  std::map<std::size_t, int> poly_nets;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].layer == Layer::kPoly) ++poly_nets[netlist.box_net[i]];
  }
  EXPECT_EQ(poly_nets.size(), static_cast<std::size_t>(words));
}

TEST(Ram, ScalesToKilobitArrays) {
  Generator generator;
  const GeneratorResult result = generate_ram(generator, 32, 32);
  EXPECT_EQ(result.top->flattened_instance_count(), 32u * 32u + 32u + 32u + 32u);
  // 11 units of driver content left of the array + 32 16-wide columns.
  EXPECT_EQ(result.top->bounding_box().width(), 11 + 32 * 16);
}

}  // namespace
}  // namespace rsg
