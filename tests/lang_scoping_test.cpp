// Tests for the §4.1 scoping rules and Figure 4.1's resolution sequence:
// procedure frame -> global environment -> cell table, with symbol values
// re-resolved through the full chain.
#include <gtest/gtest.h>

#include <sstream>

#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "io/param_file.hpp"
#include "support/error.hpp"

namespace rsg::lang {
namespace {

class ScopingTest : public ::testing::Test {
 protected:
  ScopingTest() : interp_(cells_, interfaces_, graph_) {
    cells_.create("basiccell").add_box(Layer::kMetal1, Box(0, 0, 10, 10));
  }

  Value run(const std::string& source) { return interp_.run(parse_program(source)); }

  CellTable cells_;
  InterfaceTable interfaces_;
  ConnectivityGraph graph_;
  Interpreter interp_;
};

TEST_F(ScopingTest, LocalsShadowGlobals) {
  interp_.set_global("x", Value::integer(1));
  EXPECT_EQ(run("(defun f (x) (locals) x) (f 2)").as_integer(), 2);
  EXPECT_EQ(run("x").as_integer(), 1);
}

TEST_F(ScopingTest, GlobalsVisibleInsideProcedures) {
  interp_.set_global("param", Value::integer(16));
  EXPECT_EQ(run("(defun f () (locals) (+ param 1)) (f)").as_integer(), 17);
}

TEST_F(ScopingTest, ScopingIsNotDynamic) {
  // f's local x must NOT be visible inside g (the thesis rejected dynamic
  // scoping, §4.1). g sees the global x instead.
  interp_.set_global("x", Value::integer(100));
  EXPECT_EQ(run("(defun g () (locals) x)"
                "(defun f (x) (locals) (g))"
                "(f 5)")
                .as_integer(),
            100);
}

TEST_F(ScopingTest, CellTableIsTheLastResort) {
  const Value v = run("basiccell");
  ASSERT_TRUE(v.is_cell());
  EXPECT_EQ(v.as_cell()->name(), "basiccell");
}

TEST_F(ScopingTest, Figure41ResolutionSequence) {
  // corecell is bound (by the parameter file) to the SYMBOL basiccell;
  // resolving corecell inside a procedure must walk: frame(fail) ->
  // global(symbol) -> frame(fail) -> global(fail) -> cell table(hit).
  interp_.set_global("corecell", Value::symbol("basiccell"));
  const Value v = run("(defun f () (locals) corecell) (f)");
  ASSERT_TRUE(v.is_cell());
  EXPECT_EQ(v.as_cell()->name(), "basiccell");
}

TEST_F(ScopingTest, SymbolChainsResolveThroughLocals) {
  // A symbol can also land on a LOCAL binding of the resolving frame.
  interp_.set_global("alias", Value::symbol("target"));
  EXPECT_EQ(run("(defun f (target) (locals) alias) (f 77)").as_integer(), 77);
}

TEST_F(ScopingTest, SymbolCyclesAreDetected) {
  interp_.set_global("a", Value::symbol("b"));
  interp_.set_global("b", Value::symbol("a"));
  EXPECT_THROW(run("a"), LangError);
}

TEST_F(ScopingTest, SetqPrefersLocalThenGlobalThenCreatesLocal) {
  interp_.set_global("g", Value::integer(1));
  // Updating an existing global from inside a procedure mutates the global.
  run("(defun f () (locals) (setq g 2)) (f)");
  EXPECT_EQ(run("g").as_integer(), 2);
  // A name bound nowhere becomes a LOCAL of the procedure, invisible after.
  run("(defun h () (locals) (setq fresh 9)) (h)");
  EXPECT_THROW(run("fresh"), LangError);
  // A declared local stays local even when a global of the same name exists.
  interp_.set_global("both", Value::integer(5));
  run("(defun k () (locals both) (setq both 6)) (k)");
  EXPECT_EQ(run("both").as_integer(), 5);
}

TEST_F(ScopingTest, ParameterFileSetsUpTheGlobalEnvironment) {
  const ParameterFile params = ParameterFile::parse(
      "; Appendix C style\n"
      ".output_file:/tmp/out.cif\n"
      "xsize = asize\n"
      "asize = 16\n"
      "name = \"thearray\"\n"
      "corecell=basiccell\n");
  params.apply(interp_);
  EXPECT_EQ(run("xsize").as_integer(), 16);          // symbol -> asize -> 16
  EXPECT_EQ(run("name").as_string(), "thearray");    // string stays a string
  EXPECT_TRUE(run("corecell").is_cell());            // symbol -> cell table
  EXPECT_EQ(*params.directive("output_file"), "/tmp/out.cif");
  EXPECT_EQ(params.directive("nope"), nullptr);
}

TEST_F(ScopingTest, ParameterFileErrors) {
  EXPECT_THROW(ParameterFile::parse("novalue"), Error);
  EXPECT_THROW(ParameterFile::parse("= 5"), Error);
  EXPECT_THROW(ParameterFile::parse(".directive_without_colon"), Error);
}

TEST_F(ScopingTest, MacroEnvironmentOutlivesTheCall) {
  // §4.5: environments may have a much greater lifetime than the call —
  // a retained macro environment keeps its bindings alive.
  const Value env = run("(macro mbox (v) (locals)) (mbox 31)");
  // Force some garbage to churn the interpreter.
  run("(defun f (x) (locals) x) (do (i 0 (+ i 1) (> i 100)) (f i))");
  EXPECT_EQ(env.as_environment()->find("v")->as_integer(), 31);
}

}  // namespace
}  // namespace rsg::lang
