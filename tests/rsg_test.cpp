// Generator-level tests, centered on E5: the decoupling of procedural and
// graphical information (Fig 1.1 / §3.2) — one design file retargeted by
// different sample layouts, one sample personalized by different parameter
// files — plus driver behaviours (top-cell choice, phase timing, errors).
#include "rsg/generator.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

constexpr const char* kRowDesign = R"(
(macro mrow (n)
  (locals foo)
  (do (i 1 (+ i 1) (> i n))
      (mk_instance b.i brick)
      (cond ((> i 1) (connect b.(- i 1) b.i 1)))))
(assign r (mrow n))
(mk_cell "row" (subcell r b.1))
)";

// Two implementations of the same brick: a loose one and a dense one with a
// different orientation discipline.
constexpr const char* kLooseSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 30 0 N
  label 1 from a to b
end
)";

constexpr const char* kDenseMirroredSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 MN
  label 1 from a to b
end
)";

TEST(Generator, SameDesignDifferentSamplesGiveDifferentImplementations) {
  // §3.2: "The procedural information in the design file ... remains
  // constant over different implementations of the design as given by the
  // sample layout."
  Generator loose;
  const GeneratorResult a = loose.run(kLooseSample, kRowDesign, "n = 4");
  Generator dense;
  const GeneratorResult b = dense.run(kDenseMirroredSample, kRowDesign, "n = 4");

  ASSERT_EQ(a.top->instances().size(), 4u);
  ASSERT_EQ(b.top->instances().size(), 4u);
  EXPECT_EQ(a.top->instances()[1].placement.location, (Point{30, 0}));
  EXPECT_EQ(b.top->instances()[1].placement.location, (Point{40, 0}));
  EXPECT_EQ(b.top->instances()[1].placement.orientation, Orientation::kMirrorNorth);
  // Mirrored chain: MN ∘ MN = N — the third brick is upright again.
  EXPECT_EQ(b.top->instances()[2].placement.orientation, Orientation::kNorth);
}

TEST(Generator, SameSampleDifferentParametersPersonalize) {
  Generator g4;
  Generator g9;
  const GeneratorResult a = g4.run(kLooseSample, kRowDesign, "n = 4");
  const GeneratorResult b = g9.run(kLooseSample, kRowDesign, "n = 9");
  EXPECT_EQ(a.top->instances().size(), 4u);
  EXPECT_EQ(b.top->instances().size(), 9u);
}

TEST(Generator, TopCellSelection) {
  const char* design = R"(
(mk_instance x brick)
(mk_cell "first" x)
(mk_instance y brick)
(mk_cell "second" y)
)";
  // Default: the last created cell.
  Generator g1;
  EXPECT_EQ(g1.run(kLooseSample, design, "n = 1").top->name(), "second");
  // The .top_cell directive wins.
  Generator g2;
  EXPECT_EQ(g2.run(kLooseSample, design, ".top_cell:first\nn = 1").top->name(), "first");
  // The explicit argument beats both.
  Generator g3;
  EXPECT_EQ(g3.run(kLooseSample, design, ".top_cell:first\nn = 1", "second").top->name(),
            "second");
}

TEST(Generator, NoCellsAnywhereFails) {
  Generator generator;
  EXPECT_THROW(generator.run("", "(+ 1 2)", ""), LayoutError);
}

TEST(Generator, DesignWithoutMkCellFallsBackToSampleCell) {
  // A design file that computes but never builds still has the sample's
  // cells to output; the driver picks the most recent one.
  Generator generator;
  const GeneratorResult result = generator.run(kLooseSample, "(+ 1 2)", "");
  EXPECT_EQ(result.top->name(), "brick");
}

TEST(Generator, PhaseTimesAreRecorded) {
  Generator generator;
  const GeneratorResult result = generator.run(kLooseSample, kRowDesign, "n = 32");
  EXPECT_GT(result.times.total().count(), 0.0);
  EXPECT_GE(result.times.read_sample.count(), 0.0);
  EXPECT_GE(result.times.execute_design.count(), 0.0);
  EXPECT_GE(result.times.write_output.count(), 0.0);
}

TEST(Generator, StatsArePlumbedThrough) {
  Generator generator;
  const GeneratorResult result = generator.run(kLooseSample, kRowDesign, "n = 8");
  EXPECT_EQ(result.sample_stats.cells, 1u);
  EXPECT_EQ(result.sample_stats.interfaces_declared, 1u);
  EXPECT_GT(result.interp_stats.procedure_calls, 0u);
  EXPECT_GT(result.interface_lookups, 0u);
  EXPECT_NE(result.output.find("9 row;"), std::string::npos);
}

TEST(Generator, LanguageErrorsCarryDesignFileLocations) {
  Generator generator;
  try {
    generator.run(kLooseSample, "(mk_instance x brick)\n(connect x)", "");
    FAIL() << "expected LangError";
  } catch (const LangError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Generator, GeneratedCellsAreReusableAcrossRuns) {
  // One Generator accumulates state: a second design file can use cells the
  // first one built — the "delayed binding ... to any desired time" of the
  // macro abstraction story.
  Generator generator;
  generator.run(kLooseSample, kRowDesign, "n = 4");
  const char* second = R"(
(mk_instance a row)
(mk_instance b row)
(connect a b 7)
(mk_cell "tworows" a)
)";
  // Declare a row/row interface first (rows were never in the sample).
  generator.interfaces().declare("row", "row", 7, Interface{{0, 20}, Orientation::kNorth});
  lang::Interpreter interp(generator.cells(), generator.interfaces(), generator.graph());
  interp.run(lang::parse_program(second));
  EXPECT_TRUE(generator.cells().contains("tworows"));
  EXPECT_EQ(generator.cells().get("tworows").flattened_instance_count(), 2u + 8u);
}

}  // namespace
}  // namespace rsg
