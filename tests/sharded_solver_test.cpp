// Tests for the sharded solve engine: partition invariants of plan_shards,
// byte-identity of the sharded solver against the serial worklist on a
// 100+-seed property corpus, the reconciliation loop's convergence
// reporting, and the single infeasibility verdict across shard boundaries.
// Labeled `concurrency` as well as `compact`: the 4-thread solves run
// under the TSan CI job.
#include "compact/sharded_solver.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "compact/constraint_builder.hpp"
#include "compact/flat_compactor.hpp"
#include "compact/shard_partition.hpp"
#include "compact/synth_design.hpp"
#include "compact/xy_schedule.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

ConstraintSystem build_system(const SynthField& field) {
  FlatOptions options;
  Coord width_before = 0;
  std::vector<CompactionBox> cboxes =
      normalized_compaction_boxes(field.boxes, options, field.stretchable, width_before);
  ConstraintSystemBuilder builder(CompactionRules::mosis());
  builder.emit_batch(cboxes);
  return builder.system();
}

FlatOptions sharded_options(int shards, int threads) {
  FlatOptions options;
  options.solve_shards = shards;
  options.solve_threads = threads;
  return options;
}

TEST(ShardPlan, PartitionsEveryConstraintExactlyOnce) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    const SynthField field = make_random_field(seed, 8 + static_cast<int>(seed % 20));
    const ConstraintSystem system = build_system(field);
    for (const int shards : {2, 4}) {
      const ShardPlan plan = plan_shards(system, shards);
      ASSERT_GE(plan.shard_count, 1) << "seed " << seed;
      ASSERT_LE(plan.shard_count, shards) << "seed " << seed;
      ASSERT_EQ(plan.shard_of.size(), system.variable_count());
      for (const int s : plan.shard_of) {
        ASSERT_GE(s, 0);
        ASSERT_LT(s, plan.shard_count);
      }
      // Every constraint lands in exactly one bucket.
      std::size_t internal_total = 0;
      for (const auto& bucket : plan.internal) internal_total += bucket.size();
      EXPECT_EQ(internal_total + plan.boundary.size(), system.constraint_count())
          << "seed " << seed;
      // Internal constraints stay inside their shard; boundary ones cross.
      for (int s = 0; s < plan.shard_count; ++s) {
        for (const std::size_t e : plan.internal[static_cast<std::size_t>(s)]) {
          const Constraint& c = system.constraints()[e];
          EXPECT_EQ(plan.shard_of[static_cast<std::size_t>(c.to)], s);
          if (c.from >= 0) {
            EXPECT_EQ(plan.shard_of[static_cast<std::size_t>(c.from)], s);
          }
        }
      }
      for (const std::size_t e : plan.boundary) {
        const Constraint& c = system.constraints()[e];
        ASSERT_GE(c.from, 0);
        EXPECT_NE(plan.shard_of[static_cast<std::size_t>(c.from)],
                  plan.shard_of[static_cast<std::size_t>(c.to)]);
        EXPECT_TRUE(plan.boundary_var[static_cast<std::size_t>(c.from)]);
        EXPECT_TRUE(plan.boundary_var[static_cast<std::size_t>(c.to)]);
      }
      EXPECT_EQ(plan.stats.boundary_constraints, plan.boundary.size());
      EXPECT_GT(plan.stats.largest_shard, 0u);
    }
  }
}

TEST(ShardPlan, IsAPureFunctionOfTheSystem) {
  const SynthField field = make_random_field(5, 30);
  const ConstraintSystem system = build_system(field);
  const ShardPlan a = plan_shards(system, 4);
  const ShardPlan b = plan_shards(system, 4);
  EXPECT_EQ(a.shard_count, b.shard_count);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.boundary, b.boundary);
  EXPECT_EQ(a.internal, b.internal);
}

TEST(ShardedSolver, ValuesMatchSerialOn100SeededFields) {
  // The property corpus: on every seeded field the sharded solver's values
  // are identical to the serial worklist's (the least solution is unique,
  // and both must find exactly it).
  for (std::uint32_t seed = 0; seed < 110; ++seed) {
    const SynthField field = make_random_field(seed, 4 + static_cast<int>(seed % 40));
    ConstraintSystem serial = build_system(field);
    ConstraintSystem sharded = serial;
    solve_leftmost_worklist(serial);

    const ShardPlan plan = plan_shards(sharded, 4);
    ShardedSolveOptions options;
    options.threads = 4;
    ShardedSolveStats stats;
    const SolveStats solve = solve_leftmost_sharded(sharded, plan, options, &stats);
    EXPECT_TRUE(solve.converged);
    EXPECT_TRUE(stats.reconcile.converged || stats.fell_back_serial) << "seed " << seed;
    ASSERT_EQ(serial.values, sharded.values) << "seed " << seed;
  }
}

TEST(ShardedSolver, CompactFlatIsByteIdenticalToSerial) {
  for (std::uint32_t seed = 0; seed < 40; ++seed) {
    const SynthField field = make_random_field(seed, 6 + static_cast<int>(seed % 30));
    const FlatResult serial =
        compact_flat(field.boxes, CompactionRules::mosis(), {}, field.stretchable);
    const FlatResult sharded = compact_flat(field.boxes, CompactionRules::mosis(),
                                            sharded_options(4, 4), field.stretchable);
    ASSERT_EQ(serial.boxes, sharded.boxes) << "seed " << seed;
    EXPECT_EQ(serial.width_after, sharded.width_after) << "seed " << seed;
    EXPECT_GT(sharded.sharded.shards, 0) << "seed " << seed;
  }
}

TEST(ShardedSolver, ScheduleIsByteIdenticalToSerial) {
  // The full alternating schedule (incremental engine, warm starts, the
  // works) with sharded cold solves lands on the identical geometry.
  for (const std::uint32_t seed : {3u, 17u, 54u, 91u}) {
    const SynthField field = make_random_field(seed, 25);
    XyScheduleOptions schedule;
    schedule.max_rounds = 6;
    const XyScheduleResult serial = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, schedule, field.stretchable);
    const XyScheduleResult sharded =
        compact_flat_schedule(field.boxes, CompactionRules::mosis(), sharded_options(4, 4),
                              schedule, field.stretchable);
    ASSERT_EQ(serial.boxes, sharded.boxes) << "seed " << seed;
    EXPECT_EQ(serial.rounds, sharded.rounds) << "seed " << seed;
    EXPECT_EQ(serial.converged, sharded.converged) << "seed " << seed;
  }
}

TEST(ShardedSolver, ReportsReconciliationInTheSharedConvergenceShape) {
  const SynthField field = make_grid_field(10, 10);
  ConstraintSystem system = build_system(field);
  const ShardPlan plan = plan_shards(system, 4);
  ASSERT_GT(plan.shard_count, 1);
  ShardedSolveOptions options;
  options.threads = 2;
  ShardedSolveStats stats;
  solve_leftmost_sharded(system, plan, options, &stats);
  EXPECT_EQ(stats.shards, plan.shard_count);
  EXPECT_EQ(stats.boundary_constraints, plan.boundary.size());
  EXPECT_GE(stats.reconcile.iterations, 1);
  EXPECT_GT(stats.reconcile.cap, 0);
  EXPECT_TRUE(stats.reconcile.converged);
  EXPECT_FALSE(stats.reconcile.capped());
  EXPECT_GE(stats.shard_solves, static_cast<std::size_t>(plan.shard_count));
}

TEST(ShardedSolver, ReconcileCapFallsBackToTheExactSerialSolve) {
  // A cap of one round cannot finish reconciliation on a coupled field;
  // the fallback must still deliver exactly the serial values.
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const SynthField field = make_random_field(seed, 30);
    ConstraintSystem serial = build_system(field);
    ConstraintSystem sharded = serial;
    solve_leftmost_worklist(serial);
    const ShardPlan plan = plan_shards(sharded, 4);
    ShardedSolveOptions options;
    options.threads = 2;
    options.max_reconcile_rounds = 1;
    ShardedSolveStats stats;
    solve_leftmost_sharded(sharded, plan, options, &stats);
    EXPECT_TRUE(stats.reconcile.converged || stats.fell_back_serial);
    ASSERT_EQ(serial.values, sharded.values) << "seed " << seed;
  }
}

TEST(ShardedSolver, CrossShardPositiveCycleThrowsTheSerialVerdict) {
  // A positive cycle whose edges land in different shards: variables at
  // opposite ends of the abscissa order, so any rank cut separates them.
  ConstraintSystem system;
  for (int v = 0; v < 64; ++v) {
    system.add_variable("v" + std::to_string(v), v * 10);
  }
  for (int v = 0; v + 1 < 64; ++v) {
    system.add_constraint(v, v + 1, 1, ConstraintKind::kSpacing);
  }
  system.add_constraint(0, 63, 1, ConstraintKind::kSpacing);
  system.add_constraint(63, 0, 1, ConstraintKind::kSpacing);

  ConstraintSystem serial = system;
  EXPECT_THROW(solve_leftmost_worklist(serial), Error);

  const ShardPlan plan = plan_shards(system, 4);
  ASSERT_GT(plan.shard_count, 1);
  ShardedSolveOptions options;
  options.threads = 2;
  try {
    solve_leftmost_sharded(system, plan, options);
    FAIL() << "sharded solve accepted a positive cycle";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
  }
}

TEST(ShardedSolver, LocalPositiveCycleThrowsTheSerialVerdict) {
  ConstraintSystem system;
  for (int v = 0; v < 64; ++v) {
    system.add_variable("v" + std::to_string(v), v * 10);
  }
  // The cycle sits between rank neighbors, inside one shard.
  system.add_constraint(0, 1, 5, ConstraintKind::kSpacing);
  system.add_constraint(1, 0, 5, ConstraintKind::kSpacing);
  const ShardPlan plan = plan_shards(system, 4);
  ShardedSolveOptions options;
  options.threads = 2;
  try {
    solve_leftmost_sharded(system, plan, options);
    FAIL() << "sharded solve accepted a positive cycle";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
  }
}

TEST(ShardedSolver, SingleShardPlanDelegatesToSerial) {
  const SynthField field = make_random_field(42, 20);
  ConstraintSystem serial = build_system(field);
  ConstraintSystem delegated = serial;
  const SolveStats expected = solve_leftmost_worklist(serial);
  const ShardPlan plan = plan_shards(delegated, 1);
  EXPECT_EQ(plan.shard_count, 1);
  ShardedSolveStats stats;
  const SolveStats actual = solve_leftmost_sharded(delegated, plan, {}, &stats);
  EXPECT_EQ(serial.values, delegated.values);
  EXPECT_EQ(expected.pops, actual.pops);
  EXPECT_EQ(stats.shards, 1);
}

}  // namespace
}  // namespace rsg::compact
