// Tests for connectivity graphs and expansion (Ch. 3): spanning trees,
// redundant cycle edges, the Figure 3.3 missing-interface property, error
// paths, and determinism of the generated layout.
#include "graph/connectivity_graph.hpp"

#include <gtest/gtest.h>

#include "graph/expand.hpp"
#include "io/def_writer.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() {
    // Four 10x10 primitive cells with distinguishable content.
    for (const char* name : {"a", "b", "c", "d"}) {
      Cell& cell = cells_.create(name);
      cell.add_box(Layer::kMetal1, Box(0, 0, 10, 10));
    }
    cells_.get("a").add_box(Layer::kPoly, Box(2, 2, 4, 4));
    cells_.get("b").add_box(Layer::kPoly, Box(6, 6, 8, 8));
  }

  const Cell* cell(const char* name) { return &cells_.get(name); }

  CellTable cells_;
  InterfaceTable interfaces_;
  ConnectivityGraph graph_;
};

TEST_F(GraphTest, SingleEdgeExpansion) {
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  graph_.connect(na, nb, 1);

  Cell& out = expand_to_cell(graph_, na, "row", interfaces_, cells_);
  ASSERT_EQ(out.instances().size(), 2u);
  EXPECT_EQ(*na->placement, kIdentityPlacement);
  EXPECT_EQ(nb->placement->location, (Point{12, 0}));
  EXPECT_EQ(na->owner, &out);
  EXPECT_EQ(nb->owner, &out);
}

TEST_F(GraphTest, TraversalWorksAgainstEdgeDirection) {
  // Root on the edge's HEAD: the expander must use the inverse interface.
  // This is the bilaterality requirement of §3.4 — a macro cannot know
  // which end of its subgraph will be reached first.
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kWest});
  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  graph_.connect(na, nb, 1);

  expand_to_cell(graph_, nb, "row", interfaces_, cells_);
  // nb is at identity; na must be placed so that I_ab(na) = nb.
  const Interface i = interfaces_.get("a", "b", 1);
  EXPECT_EQ(i.place_other(*na->placement), *nb->placement);
}

TEST_F(GraphTest, Figure33SpanningTreeNeedsOnlyThreeInterfaces) {
  // Figure 3.3: a 4-cell cluster (a,b,c,d) whose connectivity graph is the
  // spanning tree a-b, b-c, c-d. The interfaces I_ad, I_ac, I_bd are never
  // accessed and need not exist in the sample layout.
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  interfaces_.declare("b", "c", 1, Interface{{0, 12}, Orientation::kNorth});
  interfaces_.declare("c", "d", 1, Interface{{-12, 0}, Orientation::kNorth});

  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  GraphNode* nc = graph_.make_instance(cell("c"));
  GraphNode* nd = graph_.make_instance(cell("d"));
  graph_.connect(na, nb, 1);
  graph_.connect(nb, nc, 1);
  graph_.connect(nc, nd, 1);

  interfaces_.reset_lookup_count();
  ExpandStats stats;
  Cell& out = expand_to_cell(graph_, na, "cluster", interfaces_, cells_, &stats);

  EXPECT_EQ(out.instances().size(), 4u);
  EXPECT_EQ(stats.nodes_placed, 4u);
  EXPECT_EQ(nd->placement->location, (Point{0, 12}));  // walked around the U
  // No lookup ever touched (a,d), (a,c) or (b,d).
  EXPECT_FALSE(interfaces_.contains("a", "d", 1));
  EXPECT_FALSE(interfaces_.contains("a", "c", 1));
  EXPECT_FALSE(interfaces_.contains("b", "d", 1));
}

TEST_F(GraphTest, ConsistentRedundantCycleEdgeIsAccepted) {
  // A square cycle whose fourth edge agrees with the tree-derived
  // placements: "cycles in the graph contain redundant information" (§3.1).
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  interfaces_.declare("b", "c", 1, Interface{{0, 12}, Orientation::kNorth});
  interfaces_.declare("c", "d", 1, Interface{{-12, 0}, Orientation::kNorth});
  interfaces_.declare("a", "d", 1, Interface{{0, 12}, Orientation::kNorth});

  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  GraphNode* nc = graph_.make_instance(cell("c"));
  GraphNode* nd = graph_.make_instance(cell("d"));
  graph_.connect(na, nb, 1);
  graph_.connect(nb, nc, 1);
  graph_.connect(nc, nd, 1);
  graph_.connect(na, nd, 1);  // redundant but consistent

  ExpandStats stats;
  expand_to_cell(graph_, na, "square", interfaces_, cells_, &stats);
  EXPECT_GT(stats.redundant_edges_checked, 0u);
}

TEST_F(GraphTest, InconsistentCycleThrows) {
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  interfaces_.declare("b", "c", 1, Interface{{0, 12}, Orientation::kNorth});
  interfaces_.declare("a", "c", 1, Interface{{99, 99}, Orientation::kNorth});  // contradicts

  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  GraphNode* nc = graph_.make_instance(cell("c"));
  graph_.connect(na, nb, 1);
  graph_.connect(nb, nc, 1);
  graph_.connect(na, nc, 1);

  EXPECT_THROW(expand_to_cell(graph_, na, "bad", interfaces_, cells_), LayoutError);
}

TEST_F(GraphTest, MissingInterfaceNamesTheCellsInTheError) {
  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  graph_.connect(na, nb, 5);
  try {
    expand_to_cell(graph_, na, "oops", interfaces_, cells_);
    FAIL() << "expected LayoutError";
  } catch (const LayoutError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("#5"), std::string::npos);
    EXPECT_NE(message.find("sample layout"), std::string::npos);
  }
}

TEST_F(GraphTest, LayoutIsIndependentOfTraversalRoot) {
  // §3.4: each connectivity graph maps to an equivalence class of layouts
  // identical modulo an isometry. Expanding the same graph from different
  // roots must produce identical geometry once both are rebased.
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kEast});
  interfaces_.declare("b", "c", 2, Interface{{0, -12}, Orientation::kMirrorNorth});

  auto build = [&](CellTable& cells, InterfaceTable& table, int root_index) {
    ConnectivityGraph g;
    GraphNode* na = g.make_instance(&cells.get("a"));
    GraphNode* nb = g.make_instance(&cells.get("b"));
    GraphNode* nc = g.make_instance(&cells.get("c"));
    g.connect(na, nb, 1);
    g.connect(nb, nc, 2);
    GraphNode* roots[3] = {na, nb, nc};
    expand_to_cell(g, roots[root_index], "out", table, cells);
    // Rebase on the instance of a: the interface between the a-instance and
    // the c-instance is isometry-invariant, so it must match across roots.
    return Interface::from_placements(*na->placement, *nc->placement);
  };

  std::optional<Interface> reference;
  for (int root = 0; root < 3; ++root) {
    CellTable cells;
    for (const char* name : {"a", "b", "c", "d"}) {
      cells.create(name).add_box(Layer::kMetal1, Box(0, 0, 10, 10));
    }
    const Interface rel = build(cells, interfaces_, root);
    if (!reference) {
      reference = rel;
    } else {
      EXPECT_EQ(rel, *reference) << "root index " << root;
    }
  }
}

TEST_F(GraphTest, ExpandedNodesCannotBeReconnectedOrReexpanded) {
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  graph_.connect(na, nb, 1);
  expand_to_cell(graph_, na, "row", interfaces_, cells_);

  GraphNode* nc = graph_.make_instance(cell("c"));
  EXPECT_THROW(graph_.connect(na, nc, 1), LayoutError);
  EXPECT_THROW(expand_to_cell(graph_, nb, "again", interfaces_, cells_), LayoutError);
}

TEST_F(GraphTest, SelfEdgeAndNullArgumentsRejected) {
  GraphNode* na = graph_.make_instance(cell("a"));
  EXPECT_THROW(graph_.connect(na, na, 1), LayoutError);
  EXPECT_THROW(graph_.connect(na, nullptr, 1), LayoutError);
  EXPECT_THROW(graph_.make_instance(nullptr), LayoutError);
  EXPECT_THROW(expand_to_cell(graph_, nullptr, "x", interfaces_, cells_), LayoutError);
}

TEST_F(GraphTest, MacrocellsNestHierarchically) {
  // Build a row, then instantiate the row twice in a super-cell via a fresh
  // graph — checking that generated cells behave exactly like primitives
  // (the "true macro abstraction" claim).
  interfaces_.declare("a", "b", 1, Interface{{12, 0}, Orientation::kNorth});
  GraphNode* na = graph_.make_instance(cell("a"));
  GraphNode* nb = graph_.make_instance(cell("b"));
  graph_.connect(na, nb, 1);
  Cell& row = expand_to_cell(graph_, na, "row", interfaces_, cells_);

  interfaces_.declare("row", "row", 1, Interface{{0, 14}, Orientation::kNorth});
  GraphNode* r1 = graph_.make_instance(&row);
  GraphNode* r2 = graph_.make_instance(&row);
  graph_.connect(r1, r2, 1);
  Cell& grid = expand_to_cell(graph_, r1, "grid", interfaces_, cells_);

  EXPECT_EQ(grid.flattened_instance_count(), 2u + 4u);  // 2 rows + 4 leaves
  EXPECT_EQ(grid.bounding_box(), Box(0, 0, 22, 24));
}

}  // namespace
}  // namespace rsg
