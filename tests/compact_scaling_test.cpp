// Equivalence property tests for the scaled compaction hot path: the sweep
// net finder + ordered-segment profile must emit the byte-identical
// constraint system as the quadratic/linear reference, the worklist solvers
// must reproduce the pass-based solutions exactly (the least/greatest
// fixpoints are unique), and the hashed rigid-group matcher must build the
// same groups as the all-pairs scan — across 500+ seeded random box fields
// plus the structured grid/PLA shapes the benchmarks sweep.
#include <gtest/gtest.h>

#include "compact/flat_compactor.hpp"
#include "compact/rigid_groups.hpp"
#include "compact/synth_design.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

std::vector<CompactionBox> to_compaction_boxes(const SynthField& field,
                                               ConstraintSystem& system) {
  std::vector<CompactionBox> boxes;
  boxes.reserve(field.boxes.size());
  for (std::size_t i = 0; i < field.boxes.size(); ++i) {
    CompactionBox cb;
    cb.geometry = field.boxes[i];
    cb.stretchable = field.stretchable[i];
    boxes.push_back(cb);
  }
  add_box_variables(system, boxes);
  return boxes;
}

void expect_identical_systems(const ConstraintSystem& fast, const ConstraintSystem& ref,
                              std::uint32_t seed) {
  ASSERT_EQ(fast.variable_count(), ref.variable_count()) << "seed " << seed;
  ASSERT_EQ(fast.constraint_count(), ref.constraint_count()) << "seed " << seed;
  for (std::size_t i = 0; i < fast.constraint_count(); ++i) {
    const Constraint& a = fast.constraints()[i];
    const Constraint& b = ref.constraints()[i];
    ASSERT_EQ(a.from, b.from) << "seed " << seed << " constraint " << i;
    ASSERT_EQ(a.to, b.to) << "seed " << seed << " constraint " << i;
    ASSERT_EQ(a.weight, b.weight) << "seed " << seed << " constraint " << i;
    ASSERT_EQ(a.pitch, b.pitch) << "seed " << seed << " constraint " << i;
    ASSERT_EQ(a.pitch_coeff, b.pitch_coeff) << "seed " << seed << " constraint " << i;
    ASSERT_EQ(a.kind, b.kind) << "seed " << seed << " constraint " << i;
  }
}

std::vector<SynthField> property_fields() {
  std::vector<SynthField> fields;
  for (std::uint32_t seed = 0; seed < 500; ++seed) {
    fields.push_back(make_random_field(seed, 4 + static_cast<int>(seed % 40)));
  }
  // The structured shapes the benchmarks sweep, at test-sized scales.
  fields.push_back(make_grid_field(6, 7));
  fields.push_back(make_grid_field(1, 30));
  fields.push_back(make_pla_field(8, 10));
  fields.push_back(make_pla_field(3, 25));
  // Adversarial active-set shapes for the sweep net finder: a same-x
  // contact column emitted top-to-bottom, and a descending staircase whose
  // x extents all overlap while the y extents never touch.
  SynthField column;
  for (int i = 40; i >= 0; --i) {
    column.boxes.push_back({Layer::kContactCut, Box(0, i * 12, 4, i * 12 + 4)});
    column.stretchable.push_back(false);
  }
  fields.push_back(column);
  SynthField staircase;
  for (int i = 0; i < 40; ++i) {
    staircase.boxes.push_back(
        {Layer::kMetal1, Box(i, 400 - i * 10, i + 200, 404 - i * 10)});
    staircase.stretchable.push_back(false);
  }
  fields.push_back(staircase);
  return fields;
}

TEST(CompactScaling, SweepGeneratorMatchesReferenceByteForByte) {
  std::uint32_t seed = 0;
  for (const SynthField& field : property_fields()) {
    ConstraintSystem fast;
    const std::vector<CompactionBox> fast_boxes = to_compaction_boxes(field, fast);
    generate_constraints(fast, fast_boxes, CompactionRules::mosis());

    ConstraintSystem ref;
    const std::vector<CompactionBox> ref_boxes = to_compaction_boxes(field, ref);
    generate_constraints_reference(ref, ref_boxes, CompactionRules::mosis());

    expect_identical_systems(fast, ref, seed);
    ++seed;
  }
}

TEST(CompactScaling, ParallelGenerationMatchesSerialByteForByte) {
  // The per-layer parallel sweep merges partner lists in sweep order, so
  // the emitted constraint stream must be byte-identical to the serial
  // generator — on the property fields and the benchmark grid.
  std::uint32_t seed = 0;
  std::vector<SynthField> fields = property_fields();
  fields.push_back(make_grid_field_of_size(1000));
  for (const SynthField& field : fields) {
    ConstraintSystem parallel;
    const std::vector<CompactionBox> parallel_boxes = to_compaction_boxes(field, parallel);
    generate_constraints_parallel(parallel, parallel_boxes, CompactionRules::mosis(),
                                  /*threads=*/4);

    ConstraintSystem serial;
    const std::vector<CompactionBox> serial_boxes = to_compaction_boxes(field, serial);
    generate_constraints(serial, serial_boxes, CompactionRules::mosis());

    expect_identical_systems(parallel, serial, seed);
    ++seed;
  }
}

TEST(CompactScaling, BandShardedGenerationMatchesSerialByteForByte) {
  // The band-sharded sweep (the incremental engine's reuse unit) must emit
  // the byte-identical constraint stream for ANY band partition: queries
  // and profile extents are clipped to each band, and the per-box merge
  // unions the shards back to the full-layer partner sets.
  std::uint32_t seed = 0;
  for (const SynthField& field : property_fields()) {
    ConstraintSystem serial;
    const std::vector<CompactionBox> serial_boxes = to_compaction_boxes(field, serial);
    generate_constraints(serial, serial_boxes, CompactionRules::mosis());
    for (const int bands : {2, 5, 16}) {
      ConstraintSystem banded;
      const std::vector<CompactionBox> banded_boxes = to_compaction_boxes(field, banded);
      generate_constraints_banded(banded, banded_boxes, CompactionRules::mosis(), bands,
                                  /*threads=*/3);
      expect_identical_systems(banded, serial, seed);
    }
    ++seed;
  }
}

TEST(CompactScaling, BuilderThreadsAreAThroughputKnobOnly) {
  // compact_flat with generation_threads forced past the parallel threshold
  // must reproduce the serial result exactly, rubber band included.
  const SynthField field = make_grid_field_of_size(4000);
  FlatOptions serial_options;
  serial_options.generation_threads = 1;
  const FlatResult serial =
      compact_flat(field.boxes, CompactionRules::mosis(), serial_options, field.stretchable);
  FlatOptions parallel_options;
  parallel_options.generation_threads = 4;
  const FlatResult parallel =
      compact_flat(field.boxes, CompactionRules::mosis(), parallel_options, field.stretchable);
  EXPECT_EQ(serial.boxes, parallel.boxes);
  EXPECT_EQ(serial.width_after, parallel.width_after);
  EXPECT_EQ(serial.constraint_count, parallel.constraint_count);
}

TEST(CompactScaling, WorklistSolversMatchPassBasedExactly) {
  std::uint32_t seed = 0;
  for (const SynthField& field : property_fields()) {
    ConstraintSystem system;
    const std::vector<CompactionBox> boxes = to_compaction_boxes(field, system);
    generate_constraints(system, boxes, CompactionRules::mosis());

    ConstraintSystem pass = system;
    const SolveStats pass_stats = solve_leftmost(pass, EdgeOrder::kSorted);
    ConstraintSystem work = system;
    const SolveStats work_stats = solve_leftmost_worklist(work);
    ASSERT_TRUE(pass_stats.converged);
    ASSERT_TRUE(work_stats.converged);
    ASSERT_EQ(pass.values, work.values) << "seed " << seed;

    if (!pass.values.empty()) {
      const Coord width = *std::max_element(pass.values.begin(), pass.values.end());
      std::vector<Coord> pass_upper;
      solve_rightmost(pass, width, pass_upper);
      std::vector<Coord> work_upper;
      solve_rightmost_worklist(work, width, work_upper);
      ASSERT_EQ(pass_upper, work_upper) << "seed " << seed;
    }
    ++seed;
  }
}

TEST(CompactScaling, HashedRigidGroupsMatchQuadratic) {
  std::uint32_t seed = 0;
  for (const SynthField& field : property_fields()) {
    ConstraintSystem system;
    const std::vector<CompactionBox> boxes = to_compaction_boxes(field, system);
    generate_constraints(system, boxes, CompactionRules::mosis());

    RigidGroups hashed(system, RigidMatch::kHashed);
    RigidGroups quadratic(system, RigidMatch::kQuadratic);
    for (std::size_t v = 0; v < system.variable_count(); ++v) {
      ASSERT_EQ(hashed.leader(v), quadratic.leader(v)) << "seed " << seed << " var " << v;
      ASSERT_EQ(hashed.offset(v), quadratic.offset(v)) << "seed " << seed << " var " << v;
    }
    ++seed;
  }
}

TEST(CompactScaling, WorklistDetectsPositiveCycle) {
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 10);
  system.add_constraint(a, b, 5, ConstraintKind::kSpacing);
  system.add_constraint(b, a, 5, ConstraintKind::kSpacing);
  EXPECT_THROW(solve_leftmost_worklist(system), Error);
  std::vector<Coord> upper;
  EXPECT_THROW(solve_rightmost_worklist(system, 100, upper), Error);
}

TEST(CompactScaling, EndToEndWorklistMatchesPassBasedOnBenchmarkGrid) {
  const SynthField field = make_grid_field_of_size(1000);
  FlatOptions pass_options;
  pass_options.solver = SolverKind::kPassBased;
  pass_options.apply_rubber_band = true;
  const FlatResult pass =
      compact_flat(field.boxes, CompactionRules::mosis(), pass_options, field.stretchable);
  FlatOptions work_options;
  work_options.solver = SolverKind::kWorklist;
  work_options.apply_rubber_band = true;
  const FlatResult work =
      compact_flat(field.boxes, CompactionRules::mosis(), work_options, field.stretchable);
  EXPECT_EQ(pass.width_after, work.width_after);
  EXPECT_EQ(pass.boxes, work.boxes);
  EXPECT_LT(work.width_after, work.width_before);  // the compactor did work
}

}  // namespace
}  // namespace rsg::compact
