// Generative property tests for the LP engine zoo (§6.3's solver, four
// ways): seeded random instances spanning the shapes that break simplex
// implementations in practice — degenerate plateaus, unbounded rays,
// infeasible systems, and the near-unimodular difference-constraint
// matrices leaf compaction actually emits — asserting that the dense
// tableau, sparse Dantzig, sparse devex and sparse dual engines agree on
// feasibility, boundedness and objective value on every single one. The
// harness is the example-driven validation idea of the ROADMAP: the
// specification ("all engines are the same function") is checked against a
// generated example population rather than hand-picked cases, in the
// spirit of `Generating Significant Examples for Conceptual Schema
// Validation`.
//
// Determinism: every instance derives from a fixed seed; there is no
// wall-clock or global entropy anywhere, so a failure reproduces by seed.
// CI additionally runs the compact label under `ctest --repeat
// until-fail:3` to screen for order/state flakiness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>

#include "compact/simplex.hpp"

namespace rsg::compact {
namespace {

struct EngineRun {
  const char* name;
  LpSolution solution;
};

// Solves `p` with all four engines and cross-checks them; returns the
// dense solution for family-specific assertions.
LpSolution expect_engines_agree(const LpProblem& p, std::uint32_t seed, const char* family) {
  const EngineRun runs[] = {
      {"dense", solve_lp(p, LpMethod::kDenseTableau)},
      {"sparse-dantzig", solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDantzig)},
      {"sparse-devex", solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDevex)},
      {"sparse-dual", solve_lp(p, LpMethod::kSparseDual)},
  };
  const LpSolution& dense = runs[0].solution;
  for (const EngineRun& run : runs) {
    EXPECT_EQ(run.solution.feasible, dense.feasible)
        << family << " seed " << seed << " engine " << run.name;
    if (!dense.feasible || !run.solution.feasible) continue;
    EXPECT_EQ(run.solution.bounded, dense.bounded)
        << family << " seed " << seed << " engine " << run.name;
    if (!dense.bounded || !run.solution.bounded) continue;
    EXPECT_NEAR(run.solution.objective, dense.objective,
                1e-6 * (1.0 + std::abs(dense.objective)))
        << family << " seed " << seed << " engine " << run.name;
  }
  // The satellite contract, stated directly: the dual engine reports
  // infeasible exactly when the primal does.
  EXPECT_EQ(runs[3].solution.feasible, runs[1].solution.feasible)
      << family << " seed " << seed;
  return dense;
}

std::mt19937 rng_for(std::uint32_t seed) { return std::mt19937(seed * 2654435761u + 17u); }

// Family 1: dense random LPs, nonnegative costs (always bounded), mixed
// rhs signs so phase 1 / the dual repair loop both engage. Feasibility is
// up to the draw — both outcomes appear across the seed range.
TEST(LpPropertyTest, RandomDenseInstancesAgreeAcrossEngines) {
  for (std::uint32_t seed = 0; seed < 150; ++seed) {
    auto rng = rng_for(seed);
    std::uniform_int_distribution<int> dim(1, 10);
    std::uniform_real_distribution<double> coeff(-3.0, 3.0);
    std::uniform_real_distribution<double> cost(0.0, 2.0);
    LpProblem p;
    p.num_vars = dim(rng);
    for (int j = 0; j < p.num_vars; ++j) p.objective.push_back(cost(rng));
    const int rows = dim(rng);
    for (int i = 0; i < rows; ++i) {
      LpConstraint c;
      for (int j = 0; j < p.num_vars; ++j) {
        const double v = coeff(rng);
        if (std::abs(v) > 1.0) c.terms.emplace_back(j, v);
      }
      c.rhs = coeff(rng);
      p.constraints.push_back(std::move(c));
    }
    expect_engines_agree(p, seed, "random-dense");
  }
}

// Family 2: mixed-sign costs over box-ish constraints — the shapes where
// the dual's working bounds and unboundedness detection earn their keep.
// Roughly a third of the draws are unbounded (a negative-cost column no
// row touches).
TEST(LpPropertyTest, MixedSignCostsAgreeIncludingUnbounded) {
  int unbounded_seen = 0;
  for (std::uint32_t seed = 0; seed < 120; ++seed) {
    auto rng = rng_for(seed ^ 0xB0B0B0B0u);
    std::uniform_int_distribution<int> dim(2, 8);
    std::uniform_real_distribution<double> coeff(0.5, 3.0);
    std::uniform_real_distribution<double> cost(-2.0, 2.0);
    std::uniform_int_distribution<int> cover(0, 2);
    LpProblem p;
    p.num_vars = dim(rng);
    for (int j = 0; j < p.num_vars; ++j) p.objective.push_back(cost(rng));
    for (int j = 0; j < p.num_vars; ++j) {
      // cover == 0 leaves column j out of every row: unbounded whenever
      // its cost drew negative.
      if (cover(rng) == 0) continue;
      LpConstraint c;
      c.terms.emplace_back(j, coeff(rng));
      if (j + 1 < p.num_vars) c.terms.emplace_back(j + 1, coeff(rng) - 2.0);
      c.rhs = coeff(rng) * 4.0;
      p.constraints.push_back(std::move(c));
    }
    const LpSolution dense = expect_engines_agree(p, seed, "mixed-cost");
    if (dense.feasible && !dense.bounded) ++unbounded_seen;
  }
  EXPECT_GT(unbounded_seen, 10);  // the family actually exercises the ray path
}

// Family 3: known-infeasible systems (x <= a and x >= a + gap, folded into
// random padding rows). Every engine must report infeasible — in
// particular dual <=> primal, the satellite's equivalence.
TEST(LpPropertyTest, InfeasibleInstancesAgreeAcrossEngines) {
  for (std::uint32_t seed = 0; seed < 80; ++seed) {
    auto rng = rng_for(seed ^ 0x1BADB002u);
    std::uniform_int_distribution<int> dim(1, 6);
    std::uniform_real_distribution<double> coeff(-2.0, 2.0);
    std::uniform_real_distribution<double> gap(0.5, 5.0);
    LpProblem p;
    p.num_vars = dim(rng);
    for (int j = 0; j < p.num_vars; ++j) p.objective.push_back(std::abs(coeff(rng)));
    const int pinned = static_cast<int>(seed) % p.num_vars;
    const double a = std::abs(coeff(rng));
    p.constraints.push_back({{{pinned, 1.0}}, a});               // x <= a
    p.constraints.push_back({{{pinned, -1.0}}, -(a + gap(rng))});  // x >= a + gap
    const int extra = dim(rng);
    for (int i = 0; i < extra; ++i) {
      LpConstraint c;
      for (int j = 0; j < p.num_vars; ++j) {
        const double v = coeff(rng);
        if (std::abs(v) > 0.8) c.terms.emplace_back(j, v);
      }
      c.rhs = std::abs(coeff(rng)) + 1.0;  // padding rows stay satisfiable
      p.constraints.push_back(std::move(c));
    }
    const LpSolution dense = expect_engines_agree(p, seed, "infeasible");
    EXPECT_FALSE(dense.feasible) << "seed " << seed;
  }
}

// Family 4: degenerate plateaus — many rows tight at the origin (zero
// rhs), duplicated rows, and zero-cost ties. The anti-cycling guards of
// all four engines have to survive these; the objective is pinned by one
// non-degenerate row per instance.
TEST(LpPropertyTest, DegenerateInstancesTerminateAndAgree) {
  for (std::uint32_t seed = 0; seed < 80; ++seed) {
    auto rng = rng_for(seed ^ 0xDE6E4EA7u);
    std::uniform_int_distribution<int> dim(3, 9);
    std::uniform_int_distribution<int> pick(0, 2);
    LpProblem p;
    const int n = dim(rng);
    p.num_vars = n;
    p.objective.assign(static_cast<std::size_t>(n), 0.0);
    p.objective.back() = -1.0;  // maximize the chain head
    for (int i = 0; i + 1 < n; ++i) {
      // x_{n-1} <= x_i, all tight at the origin; duplicates at random.
      p.constraints.push_back({{{n - 1, 1.0}, {i, -1.0}}, 0.0});
      if (pick(rng) == 0) p.constraints.push_back({{{n - 1, 1.0}, {i, -1.0}}, 0.0});
      p.constraints.push_back({{{i, 1.0}}, 1.0 + pick(rng)});  // x_i <= 1..3
    }
    p.constraints.push_back({{{n - 1, 1.0}}, 1.0});  // pins the optimum at -1
    const LpSolution dense = expect_engines_agree(p, seed, "degenerate");
    ASSERT_TRUE(dense.feasible && dense.bounded) << "seed " << seed;
    EXPECT_NEAR(dense.objective, -1.0, 1e-7) << "seed " << seed;
  }
}

// Family 5: near-unimodular difference-constraint systems — integer +-1
// coefficients and integer bounds, the exact matrix class leaf compaction
// emits. All arithmetic is exact here, so the agreement bar is EQUALITY,
// and the dual engine must clear every instance with zero phase-1 pivots
// and zero fallbacks (the tentpole's claim, fuzzed).
TEST(LpPropertyTest, NearUnimodularChainsAgreeBitForBitAndDualSkipsPhaseOne) {
  for (std::uint32_t seed = 0; seed < 120; ++seed) {
    auto rng = rng_for(seed ^ 0x5EAFC311u);
    std::uniform_int_distribution<int> dim(2, 24);
    std::uniform_int_distribution<int> weight(1, 9);
    std::uniform_int_distribution<int> pick(0, 3);
    LpProblem p;
    const int n = dim(rng);
    p.num_vars = n;
    for (int j = 0; j < n; ++j) {
      p.objective.push_back(pick(rng) == 0 ? 0.0 : static_cast<double>(weight(rng)));
    }
    p.constraints.push_back({{{0, -1.0}}, -static_cast<double>(weight(rng))});  // x0 >= w
    for (int v = 1; v < n; ++v) {
      // x_v >= x_{v-1} + w, plus occasional long-range and ceiling rows.
      p.constraints.push_back(
          {{{v - 1, 1.0}, {v, -1.0}}, -static_cast<double>(weight(rng))});
      if (pick(rng) == 0 && v >= 2) {
        p.constraints.push_back(
            {{{v - 2, 1.0}, {v, -1.0}}, -static_cast<double>(weight(rng) + 3)});
      }
    }
    p.constraints.push_back({{{n - 1, 1.0}}, 200.0});  // global ceiling: feasible, bounded
    const LpSolution dense = solve_lp(p, LpMethod::kDenseTableau);
    const LpSolution dantzig = solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDantzig);
    const LpSolution devex = solve_lp(p, LpMethod::kSparseRevised, LpPricing::kDevex);
    const LpSolution dual = solve_lp(p, LpMethod::kSparseDual);
    ASSERT_TRUE(dense.feasible && dense.bounded) << "seed " << seed;
    EXPECT_EQ(dantzig.objective, dense.objective) << "seed " << seed;
    EXPECT_EQ(devex.objective, dense.objective) << "seed " << seed;
    EXPECT_EQ(dual.objective, dense.objective) << "seed " << seed;
    EXPECT_EQ(dual.stats.phase1_pivots, 0) << "seed " << seed;
    EXPECT_EQ(dual.stats.dual_fallbacks, 0) << "seed " << seed;
  }
}

// Family 6 (this PR): bounded-variable LPs with finite upper bounds ACTIVE
// at the optimum — the bounded-variable ratio test's home turf. Every
// negative-cost column gets a finite integer bound (so instances are
// bounded by construction, never via working bounds), coefficients are
// +-1 integers and bounds/rhs integers, so the agreement bar is EQUALITY:
// the dual solves the bounds natively while dense / sparse-primal solve
// the row-augmented equivalent, and all four must land on the identical
// objective.
TEST(LpPropertyTest, BoundedVariableInstancesAgreeWithBoundsActiveAtOptimum) {
  int feasible_seen = 0;
  int bound_active_seen = 0;
  for (std::uint32_t seed = 0; seed < 120; ++seed) {
    auto rng = rng_for(seed ^ 0xB07DEDu);
    std::uniform_int_distribution<int> dim(2, 16);
    std::uniform_int_distribution<int> cost(-3, 5);
    std::uniform_int_distribution<int> bound(2, 8);
    std::uniform_int_distribution<int> weight(1, 6);
    std::uniform_int_distribution<int> pick(0, 2);
    LpProblem p;
    const int n = dim(rng);
    p.num_vars = n;
    for (int j = 0; j < n; ++j) {
      const int c = cost(rng);
      p.objective.push_back(static_cast<double>(c));
      // A negative cost must rest on a USER bound for the instance to stay
      // bounded; nonnegative columns draw a finite bound some of the time
      // so the at-upper machinery sees both kinds.
      p.upper.push_back(c < 0 || pick(rng) == 0 ? static_cast<double>(bound(rng) + 2)
                                                : kLpUnbounded);
    }
    p.constraints.push_back({{{0, -1.0}}, -static_cast<double>(weight(rng))});  // x0 >= w
    for (int v = 1; v < n; ++v) {
      // Difference rows against the box: x_v >= x_{v-1} + w collides with
      // x_v <= u_v often enough that a healthy slice of draws is
      // infeasible — which every engine must agree on too.
      if (pick(rng) != 0) {
        p.constraints.push_back(
            {{{v - 1, 1.0}, {v, -1.0}}, -static_cast<double>(weight(rng) - 3)});
      }
    }
    const LpSolution dense = expect_engines_agree(p, seed, "bounded-variable");
    if (!dense.feasible || !dense.bounded) continue;
    ++feasible_seen;
    // All-integer +-1 data: the native-bounds dual and the row-augmented
    // dense baseline must agree EXACTLY, not just within tolerance.
    const LpSolution dual = solve_lp(p, LpMethod::kSparseDual);
    EXPECT_EQ(dual.objective, dense.objective) << "seed " << seed;
    for (int j = 0; j < n; ++j) {
      if (p.upper[static_cast<std::size_t>(j)] != kLpUnbounded &&
          dense.x[static_cast<std::size_t>(j)] >= p.upper[static_cast<std::size_t>(j)] - 1e-9) {
        ++bound_active_seen;
        break;
      }
    }
  }
  // The family must actually exercise its claim: plenty of feasible draws,
  // and on most of them some finite bound carries the optimum.
  EXPECT_GT(feasible_seen, 30);
  EXPECT_GT(bound_active_seen, 20);
}

// Family 7 (this PR): warm-start chains — solve, perturb one bound, re-solve
// with the carried basis vs cold, and the two must be indistinguishable in
// outcome: identical objective (exact, integer data), a solution feasible
// against every row, and the cross-engine agreement holds on the perturbed
// instance too. The chains are the near-unimodular class the leaf schedule
// re-solves each round; perturbing an rhs keeps the carried basis
// dual-feasible (duals depend only on the costs), so the ensemble must
// also show the handle being ACCEPTED, not just attempted.
TEST(LpPropertyTest, WarmStartChainsMatchColdAcrossEngines) {
  int accepted = 0;
  long warm_pivots = 0;
  long cold_pivots = 0;
  const LpOptions dual_opts{LpMethod::kSparseDual, LpPricing::kDantzig};
  for (std::uint32_t seed = 0; seed < 80; ++seed) {
    auto rng = rng_for(seed ^ 0x3A37ED5u);
    std::uniform_int_distribution<int> dim(3, 20);
    std::uniform_int_distribution<int> weight(1, 9);
    std::uniform_int_distribution<int> pick(0, 3);
    LpProblem p;
    const int n = dim(rng);
    p.num_vars = n;
    for (int j = 0; j < n; ++j) {
      p.objective.push_back(pick(rng) == 0 ? 0.0 : static_cast<double>(weight(rng)));
    }
    p.constraints.push_back({{{0, -1.0}}, -static_cast<double>(weight(rng))});
    for (int v = 1; v < n; ++v) {
      p.constraints.push_back(
          {{{v - 1, 1.0}, {v, -1.0}}, -static_cast<double>(weight(rng))});
    }
    p.constraints.push_back({{{n - 1, 1.0}}, 400.0});  // ceiling: feasible, bounded

    LpWarmStart warm;
    const LpSolution first = solve_lp(p, dual_opts, &warm);
    ASSERT_TRUE(first.feasible && first.bounded) << "seed " << seed;
    ASSERT_TRUE(warm.valid()) << "seed " << seed;

    // Perturb one chain bound (an rhs): the next round's problem, one
    // bound change away, exactly the leaf schedule's shape.
    LpProblem p2 = p;
    const std::size_t row = static_cast<std::size_t>(seed) % (p2.constraints.size() - 1);
    p2.constraints[row].rhs -= 1.0;  // tighten: x_row's gap grows by 1

    const LpSolution warm_run = solve_lp(p2, dual_opts, &warm);
    const LpSolution cold_run = solve_lp(p2, dual_opts);
    const LpSolution dense = expect_engines_agree(p2, seed, "warm-chain");
    ASSERT_TRUE(dense.feasible && dense.bounded) << "seed " << seed;
    ASSERT_TRUE(warm_run.feasible && cold_run.feasible) << "seed " << seed;
    EXPECT_EQ(warm_run.objective, cold_run.objective) << "seed " << seed;
    EXPECT_EQ(warm_run.objective, dense.objective) << "seed " << seed;
    EXPECT_EQ(warm_run.stats.warm_attempted, 1) << "seed " << seed;
    accepted += warm_run.stats.warm_accepted;
    warm_pivots += warm_run.stats.iterations;
    cold_pivots += cold_run.stats.iterations;

    // Basis feasibility of the warm-started answer, checked directly
    // against every row and bound of the perturbed problem.
    for (std::size_t i = 0; i < p2.constraints.size(); ++i) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : p2.constraints[i].terms) {
        lhs += coeff * warm_run.x[static_cast<std::size_t>(var)];
      }
      EXPECT_LE(lhs, p2.constraints[i].rhs + 1e-7) << "seed " << seed << " row " << i;
    }
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(warm_run.x[static_cast<std::size_t>(j)], -1e-7) << "seed " << seed;
    }
  }
  // The carried bases must be genuinely adopted across the ensemble, and
  // adopting them must pay: a warm re-solve starts primal-near-feasible,
  // so the total pivot spend sits well below the cold baseline's.
  EXPECT_GT(accepted, 60);
  EXPECT_LT(warm_pivots * 2, cold_pivots);
}

}  // namespace
}  // namespace rsg::compact
