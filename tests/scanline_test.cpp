// Tests for constraint generation (§6.4.1): visibility scan line versus the
// naive overconstraining generator, hidden edges, net awareness, and the
// shadow margin.
#include "compact/scanline.hpp"

#include <gtest/gtest.h>

#include "compact/bellman_ford.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

std::vector<CompactionBox> make_boxes(std::initializer_list<LayerBox> list,
                                      bool stretchable = false) {
  std::vector<CompactionBox> out;
  for (const LayerBox& lb : list) {
    CompactionBox cb;
    cb.geometry = lb;
    cb.stretchable = stretchable;
    out.push_back(cb);
  }
  return out;
}

int count_kind(const ConstraintSystem& system, ConstraintKind kind) {
  int n = 0;
  for (const Constraint& c : system.constraints()) n += (c.kind == kind);
  return n;
}

TEST(Scanline, TwoBoxesGetOneSpacingConstraint) {
  auto boxes = make_boxes({{Layer::kMetal1, Box(0, 0, 10, 4)},
                           {Layer::kMetal1, Box(20, 0, 30, 4)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_EQ(count_kind(system, ConstraintKind::kSpacing), 1);

  solve_leftmost(system);
  // Packed: first box at [0,10], second at [16,26] (spacing 6).
  EXPECT_EQ(system.values[static_cast<std::size_t>(boxes[1].left_var)], 16);
}

TEST(Scanline, HiddenEdgeGetsNoConstraint) {
  // Figure 6.4: the middle box masks the outer pair; the outer boxes must
  // not constrain each other directly.
  auto boxes = make_boxes({{Layer::kMetal1, Box(0, 0, 10, 4)},
                           {Layer::kMetal1, Box(10, 0, 30, 4)},   // middle, same net
                           {Layer::kMetal1, Box(40, 0, 50, 4)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  // The only spacing constraint is middle -> right; left -> right is hidden.
  int spacing = 0;
  for (const Constraint& c : system.constraints()) {
    if (c.kind != ConstraintKind::kSpacing) continue;
    ++spacing;
    EXPECT_EQ(c.from, boxes[1].right_var);
    EXPECT_EQ(c.to, boxes[2].left_var);
  }
  EXPECT_EQ(spacing, 1);
}

TEST(Scanline, SameNetFragmentsGetConnectNotSpacing) {
  // Figure 6.5: abutting fragments are one electrical net.
  std::vector<CompactionBox> boxes;
  for (int i = 0; i < 5; ++i) {
    CompactionBox cb;
    cb.geometry = {Layer::kDiffusion, Box(i * 10, 0, (i + 1) * 10, 4)};
    cb.stretchable = true;
    boxes.push_back(cb);
  }
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_EQ(count_kind(system, ConstraintKind::kSpacing), 0);
  EXPECT_GT(count_kind(system, ConstraintKind::kConnect), 0);
}

TEST(Scanline, NaiveGeneratorOverconstrainsFragments) {
  std::vector<CompactionBox> boxes;
  for (int i = 0; i < 5; ++i) {
    CompactionBox cb;
    cb.geometry = {Layer::kDiffusion, Box(i * 10, 0, (i + 1) * 10, 4)};
    cb.stretchable = true;
    boxes.push_back(cb);
  }
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints_naive(system, boxes, CompactionRules::mosis());
  EXPECT_GT(count_kind(system, ConstraintKind::kSpacing), 4);
}

TEST(Scanline, DiagonalBoxesWithinShadowMarginConstrain) {
  // y-gap 2 < spacing 6: the diagonal pair still needs x spacing.
  auto boxes = make_boxes({{Layer::kMetal1, Box(0, 0, 10, 4)},
                           {Layer::kMetal1, Box(20, 6, 30, 10)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_EQ(count_kind(system, ConstraintKind::kSpacing), 1);
}

TEST(Scanline, FarApartInYDoNotConstrain) {
  auto boxes = make_boxes({{Layer::kMetal1, Box(0, 0, 10, 4)},
                           {Layer::kMetal1, Box(20, 10, 30, 14)}});  // y-gap 6 >= 6
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_EQ(count_kind(system, ConstraintKind::kSpacing), 0);
}

TEST(Scanline, NonInteractingLayersIgnoreEachOther) {
  // Metal2 and diffusion have no spacing rule in the mosis table.
  auto boxes = make_boxes({{Layer::kMetal2, Box(0, 0, 10, 4)},
                           {Layer::kDiffusion, Box(20, 0, 30, 4)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_EQ(count_kind(system, ConstraintKind::kSpacing), 0);
}

TEST(Scanline, OverlappingInteractingLayersPreserveOrdering) {
  // Poly crossing diffusion (a transistor): topology must survive.
  auto boxes = make_boxes({{Layer::kDiffusion, Box(0, 0, 20, 8)},
                           {Layer::kPoly, Box(8, -4, 12, 12)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  EXPECT_GT(count_kind(system, ConstraintKind::kOrder), 0);

  solve_leftmost(system);
  // The poly must still cross the diffusion: its left edge stays right of
  // the diffusion's left edge, its right edge left of the diffusion's right.
  EXPECT_LE(system.values[static_cast<std::size_t>(boxes[0].left_var)],
            system.values[static_cast<std::size_t>(boxes[1].left_var)]);
  EXPECT_LE(system.values[static_cast<std::size_t>(boxes[1].right_var)],
            system.values[static_cast<std::size_t>(boxes[0].right_var)]);
}

TEST(Scanline, RigidBoxesKeepTheirWidth) {
  auto boxes = make_boxes({{Layer::kMetal1, Box(5, 0, 25, 4)}});
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  solve_leftmost(system);
  EXPECT_EQ(system.values[static_cast<std::size_t>(boxes[0].right_var)] -
                system.values[static_cast<std::size_t>(boxes[0].left_var)],
            20);
}

TEST(Scanline, StretchableBoxesMayShrinkToMinimumWidth) {
  auto boxes = make_boxes({{Layer::kMetal1, Box(5, 0, 25, 4)}}, /*stretchable=*/true);
  ConstraintSystem system;
  add_box_variables(system, boxes);
  generate_constraints(system, boxes, CompactionRules::mosis());
  solve_leftmost(system);
  EXPECT_EQ(system.values[static_cast<std::size_t>(boxes[0].right_var)] -
                system.values[static_cast<std::size_t>(boxes[0].left_var)],
            4);  // metal1 minimum width
}

}  // namespace
}  // namespace rsg::compact
