// Tests for folded-column PLAs (§1.2.3): "The RSG can generate any PLA that
// HPLA can. It can also generate more complex PLAs such as PLAs with folded
// rows or columns."
#include <gtest/gtest.h>

#include <map>

#include "layout/flatten.hpp"
#include "pla/pla_builder.hpp"
#include "support/error.hpp"

namespace rsg::pla {
namespace {

// 4 outputs, 6 terms: outputs 1 and 3 live in terms 1-3 (upper), outputs 2
// and 4 in terms 4-6 (lower) — fold-compatible by construction.
TruthTable foldable_table() {
  return TruthTable::parse(
      "10-- 1010\n"
      "01-- 0010\n"
      "--10 1000\n"
      "--01 0101\n"
      "11-- 0001\n"
      "0011 0100\n");
}

TEST(FoldedPla, FoldabilityPredicate) {
  EXPECT_TRUE(is_foldable(foldable_table()));
  // An output with crosspoints in both halves is not foldable.
  const TruthTable bad = TruthTable::parse(
      "1- 10\n"
      "01 10\n");  // output 1 fires in terms 1 (upper) and 2 (lower)
  EXPECT_FALSE(is_foldable(bad));
}

TEST(FoldedPla, RejectsUnfoldablePersonality) {
  Generator generator;
  const TruthTable bad = TruthTable::parse(
      "1- 10\n"
      "01 10\n");
  EXPECT_THROW(generate_folded_pla(generator, bad), Error);
}

TEST(FoldedPla, HalvesTheOrColumns) {
  const TruthTable table = foldable_table();

  Generator folded_gen;
  const GeneratorResult folded = generate_folded_pla(folded_gen, table);
  Generator plain_gen;
  const GeneratorResult plain = generate_pla(plain_gen, table);

  std::map<std::string, int> folded_counts;
  for (const FlatInstance& fi : flatten_instances(*folded.top)) {
    ++folded_counts[fi.cell->name()];
  }
  std::map<std::string, int> plain_counts;
  for (const FlatInstance& fi : flatten_instances(*plain.top)) {
    ++plain_counts[fi.cell->name()];
  }

  // 4 outputs fold into 2 physical columns: half the or-cells.
  EXPECT_EQ(plain_counts["or-cell"], 4 * 6);
  EXPECT_EQ(folded_counts["or-cell"], 2 * 6);
  // Same buffers (one per logical output), one track break per column.
  EXPECT_EQ(folded_counts["out-buf"], 4);
  EXPECT_EQ(folded_counts["or-brk"], 2);
  // Identical AND planes.
  EXPECT_EQ(folded_counts["and-cell"], plain_counts["and-cell"]);
  // Same number of OR crosspoints (the logic is unchanged).
  EXPECT_EQ(folded_counts["or-x"], plain_counts["or-x"]);
}

TEST(FoldedPla, FoldedLayoutIsNarrower) {
  const TruthTable table = foldable_table();
  Generator folded_gen;
  const GeneratorResult folded = generate_folded_pla(folded_gen, table);
  Generator plain_gen;
  const GeneratorResult plain = generate_pla(plain_gen, table);
  EXPECT_LT(folded.top->bounding_box().width(), plain.top->bounding_box().width());
}

TEST(FoldedPla, CrosspointsLandInTheRightSegments) {
  const TruthTable table = foldable_table();
  Generator generator;
  const GeneratorResult folded = generate_folded_pla(generator, table);

  // Recover crosspoint rows per folded column from instance placements.
  // OR columns start after 4 AND columns + connect-ao.
  const Coord or_base = 4 * kCellW + kConnectW;
  for (const FlatInstance& fi : flatten_instances(*folded.top)) {
    if (fi.cell->name() != "or-x") continue;
    const Coord x = fi.placement.location.x;
    const Coord y = fi.placement.location.y;
    ASSERT_GE(x, or_base);
    const int column = static_cast<int>((x - or_base) / kCellW) + 1;  // 1-based pair index
    const int row = static_cast<int>(-y / kCellH) + 1;                // 1-based term
    const int split = table.num_terms() / 2;
    const int output = row <= split ? 2 * column - 1 : 2 * column;
    EXPECT_TRUE(table.terms()[static_cast<std::size_t>(row - 1)]
                    .outputs[static_cast<std::size_t>(output - 1)])
        << "crosspoint at column " << column << " row " << row;
  }
}

TEST(FoldedPla, BuffersSitOnBothSidesOfThePlane) {
  Generator generator;
  const GeneratorResult folded = generate_folded_pla(generator, foldable_table());
  int above = 0;
  int below = 0;
  for (const FlatInstance& fi : flatten_instances(*folded.top)) {
    if (fi.cell->name() != "out-buf") continue;
    if (fi.placement.location.y >= 0) {
      ++above;
    } else {
      ++below;
    }
  }
  EXPECT_EQ(above, 2);
  EXPECT_EQ(below, 2);
}

}  // namespace
}  // namespace rsg::pla
