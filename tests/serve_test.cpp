// The serving layer: LruCache, ServeCore, and the socket transport.

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/param_file.hpp"
#include "pla/pla_builder.hpp"
#include "pla/truth_table.hpp"
#include "rsg/generator.hpp"
#include "rsg/lru_cache.hpp"
#include "rsg/serve_core.hpp"
#include "rsg/serve_socket.hpp"
#include "support/error.hpp"
#include "support/fault_injection.hpp"
#include "support/status.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rsg {
namespace {

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCache, HitMissAndRecency) {
  LruCache<int, std::string> cache(2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1), "one");  // 1 is now most recent
  cache.put(3, "three");           // evicts 2, the least recent
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1), "one");
  EXPECT_EQ(cache.get(3), "three");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(LruCache, PutExistingUpdatesWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // update, not insert
  EXPECT_EQ(cache.get(1), 11);
  EXPECT_EQ(cache.get(2), 20);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(LruCache, CapacityZeroDisables) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(LruCache, ConcurrentMixedAccessIsSafe) {
  LruCache<int, int> cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        cache.put((t * 31 + i) % 64, i);
        const auto hit = cache.get(i % 64);
        if (hit) {
          EXPECT_GE(*hit, 0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.stats().size, 16u);
}

// ---------------------------------------------------------------------------
// Framing

TEST(ServeProtocol, RequestRoundTrip) {
  GenerateRequest request;
  request.design = "mult";
  request.params = "asize = 4\nbeta = 2\n";
  request.top_cell = "thewholething";
  request.truth_table = "10 01\n";
  request.compact = true;
  request.bypass_cache = true;
  request.deadline_ms = 2500;

  const GenerateRequest decoded = decode_generate_request(encode_generate_request(request));
  EXPECT_EQ(decoded.design, request.design);
  EXPECT_EQ(decoded.params, request.params);
  EXPECT_EQ(decoded.top_cell, request.top_cell);
  EXPECT_EQ(decoded.truth_table, request.truth_table);
  EXPECT_EQ(decoded.compact, request.compact);
  EXPECT_EQ(decoded.bypass_cache, request.bypass_cache);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
}

TEST(ServeProtocol, ResponseRoundTrip) {
  GenerateResponse response;
  response.ok = true;
  response.cache_hit = true;
  response.cif = "DS 1;\nDF;\nE\n";
  response.top_cell = "pla";

  const GenerateResponse decoded = decode_generate_response(encode_generate_response(response));
  EXPECT_TRUE(decoded.ok);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_EQ(decoded.code, StatusCode::kOk);
  EXPECT_EQ(decoded.cif, response.cif);
  EXPECT_EQ(decoded.top_cell, response.top_cell);

  // Error responses carry the machine-readable code across the wire.
  GenerateResponse error;
  error.ok = false;
  error.code = StatusCode::kResourceExhausted;
  error.error = "queue full";
  const GenerateResponse decoded_error =
      decode_generate_response(encode_generate_response(error));
  EXPECT_FALSE(decoded_error.ok);
  EXPECT_EQ(decoded_error.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded_error.error, "queue full");
}

TEST(ServeProtocol, TruncatedFrameThrows) {
  const std::string payload = encode_generate_request(GenerateRequest{"mult", "", "", "", false,
                                                                      false});
  EXPECT_THROW(decode_generate_request(payload.substr(0, payload.size() / 2)), Error);
  EXPECT_THROW(decode_generate_request(std::string(1, '\x07')), Error);  // bad opcode
}

// ---------------------------------------------------------------------------
// ServeCore

ServeOptions test_options(std::size_t threads, std::size_t cache) {
  ServeOptions options;
  options.num_threads = threads;
  options.cache_capacity = cache;
  options.encoding_parser = [](const std::string& text) {
    return pla::to_encoding_table(pla::TruthTable::parse(text));
  };
  return options;
}

void add_mult(ServeCore& core) {
  core.add_design("mult", read_text_file(designs_path("mult.sample")),
                  read_text_file(designs_path("mult.rsg")));
}

const char kSmallMultParams[] = "asize = 3\nbeta = 1\n";

TEST(ServeCore, UnknownDesignFails) {
  ServeCore core(test_options(1, 8));
  const GenerateResponse response = core.handle({"nonesuch", "", "", "", false, false});
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kNotFound);
  EXPECT_NE(response.error.find("nonesuch"), std::string::npos);
  EXPECT_EQ(core.stats().errors, 1u);
}

TEST(ServeCore, BadParameterTextIsInvalidArgument) {
  ServeCore core(test_options(1, 0));
  add_mult(core);
  GenerateRequest request;
  request.design = "mult";
  request.params = "this is not = a = parameter file ===\n.compact:sideways\n";
  const GenerateResponse response = core.handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kInvalidArgument);
}

TEST(ServeCore, GenerateMatchesLegacyAndCaches) {
  // Reference: a legacy Generator run of the same design + params.
  Generator generator;
  const std::string expected =
      generator
          .run(read_text_file(designs_path("mult.sample")),
               read_text_file(designs_path("mult.rsg")),
               read_text_file(designs_path("mult.par")) + kSmallMultParams)
          .output;

  ServeCore core(test_options(2, 8));
  add_mult(core);
  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;

  const GenerateResponse first = core.handle(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.cif, expected);
  EXPECT_EQ(first.top_cell, "thewholething");

  const GenerateResponse second = core.handle(request);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.cif, expected);

  request.bypass_cache = true;
  const GenerateResponse third = core.handle(request);
  ASSERT_TRUE(third.ok);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.cif, expected);

  const ServeCore::Stats stats = core.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(ServeCore, CacheKeysCanonicalizedParams) {
  // The same sweep point sent in two formattings — reordered lines, extra
  // whitespace, comments, a shadowed duplicate assignment — must hit the
  // same cache entry: the key is the canonical parameter text, not the
  // bytes on the wire.
  ServeCore core(test_options(1, 8));
  add_mult(core);

  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + "asize = 3\nbeta = 1\n";
  const GenerateResponse first = core.handle(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);

  GenerateRequest reformatted;
  reformatted.design = "mult";
  reformatted.params = read_text_file(designs_path("mult.par")) +
                       "; sweep point 3/1\n\nbeta=0\n  beta   =  1\nasize =3\n";
  const GenerateResponse second = core.handle(reformatted);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.cif, first.cif);
  EXPECT_EQ(core.stats().cache.hits, 1u);

  // A request that actually differs (beta = 2) must still miss.
  GenerateRequest different;
  different.design = "mult";
  different.params = read_text_file(designs_path("mult.par")) + "asize = 3\nbeta = 2\n";
  const GenerateResponse third = core.handle(different);
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_FALSE(third.cache_hit);
}

TEST(ServeCore, TruthTableRequestsNeedParser) {
  const std::string tt = "10 10\n01 01\n";
  GenerateRequest request;
  request.design = "pla";
  request.params = read_text_file(designs_path("pla.par"));
  request.top_cell = "pla";
  request.truth_table = tt;

  // Without a parser the request is rejected...
  {
    ServeOptions options;
    options.num_threads = 1;
    ServeCore core(options);
    core.add_design("pla", read_text_file(designs_path("pla.sample")),
                    read_text_file(designs_path("pla.rsg")));
    const GenerateResponse response = core.handle(request);
    EXPECT_FALSE(response.ok);
    EXPECT_NE(response.error.find("encoding parser"), std::string::npos);
  }

  // ...with one it matches the pla builder's output.
  {
    ServeCore core(test_options(1, 8));
    core.add_design("pla", read_text_file(designs_path("pla.sample")),
                    read_text_file(designs_path("pla.rsg")));
    const GenerateResponse response = core.handle(request);
    ASSERT_TRUE(response.ok) << response.error;

    Generator generator;
    const GeneratorResult expected =
        pla::generate_pla(generator, pla::TruthTable::parse(tt));
    EXPECT_EQ(response.cif, expected.output);
  }
}

TEST(ServeCore, ConcurrentSubmissionsAreByteIdentical) {
  ServeCore core(test_options(4, 0));  // cache OFF: every request generates
  add_mult(core);

  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;
  const GenerateResponse reference = core.handle(request);
  ASSERT_TRUE(reference.ok) << reference.error;

  std::vector<std::future<GenerateResponse>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(core.submit(request));
  for (auto& future : futures) {
    const GenerateResponse response = future.get();
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_FALSE(response.cache_hit);
    EXPECT_EQ(response.cif, reference.cif);
  }
}

TEST(ServeCore, CompactRequestProducesCompactedTop) {
  ServeCore core(test_options(1, 0));
  add_mult(core);
  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;
  request.compact = true;
  const GenerateResponse response = core.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.top_cell, "thewholething_compacted");
}

// ---------------------------------------------------------------------------
// Socket transport

TEST(SocketServer, EndToEndGenerateAndShutdown) {
  ServeCore core(test_options(2, 8));
  add_mult(core);

  const std::string socket_path = testing::TempDir() + "rsg_serve_test.sock";
  SocketServer server(core, socket_path);
  server.start();

  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;

  const GenerateResponse first = send_generate_request(socket_path, request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.top_cell, "thewholething");

  // Concurrent clients against the live server.
  std::vector<std::thread> clients;
  std::vector<GenerateResponse> responses(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] { responses[static_cast<std::size_t>(i)] =
                                      send_generate_request(socket_path, request); });
  }
  for (std::thread& client : clients) client.join();
  for (const GenerateResponse& response : responses) {
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.cif, first.cif);
  }

  EXPECT_TRUE(send_shutdown_request(socket_path));
  server.wait();
  server.stop();
  std::remove(socket_path.c_str());
}

TEST(SocketServer, FramesSurviveShortTransfersAndEintrStorms) {
  // Injected partial reads/writes and synthetic EINTR storms on both sides
  // of the connection: the length-prefixed framing must still deliver every
  // frame intact — same response as an unmolested request.
  ServeCore core(test_options(1, 8));
  add_mult(core);
  const std::string socket_path = testing::TempDir() + "rsg_serve_eintr.sock";
  std::remove(socket_path.c_str());
  SocketServer server(core, socket_path);
  server.start();

  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;
  const GenerateResponse reference = send_generate_request(socket_path, request);
  ASSERT_TRUE(reference.ok) << reference.error;

  fault::arm("serve_socket.short_read", {/*skip=*/0, /*count=*/256});
  fault::arm("serve_socket.short_write", {/*skip=*/0, /*count=*/256});
  fault::arm("serve_socket.eintr_read", {/*skip=*/0, /*count=*/64});
  fault::arm("serve_socket.eintr_write", {/*skip=*/0, /*count=*/64});
  const GenerateResponse tortured = send_generate_request(socket_path, request);
  fault::disarm_all();
  // The faults really did hit the loops.
  EXPECT_GE(fault::fire_count("serve_socket.short_read"), 1);
  EXPECT_GE(fault::fire_count("serve_socket.short_write"), 1);
  EXPECT_GE(fault::fire_count("serve_socket.eintr_read"), 1);
  EXPECT_GE(fault::fire_count("serve_socket.eintr_write"), 1);
  ASSERT_TRUE(tortured.ok) << tortured.error;
  EXPECT_EQ(tortured.cif, reference.cif);
  EXPECT_EQ(tortured.top_cell, reference.top_cell);

  server.stop();
  std::remove(socket_path.c_str());
}

TEST(SocketServer, ReclaimsStaleSocketButRefusesLiveOne) {
  ServeCore core(test_options(1, 0));
  const std::string socket_path = testing::TempDir() + "rsg_serve_stale.sock";
  std::remove(socket_path.c_str());

  // A "crashed server": a socket file whose owner is gone. bind() then
  // close() without unlink leaves exactly that on disk.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", socket_path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    ::close(fd);
  }

  // The stale file is reclaimed and the server comes up and answers.
  SocketServer server(core, socket_path);
  server.start();

  // A second server on the SAME path must refuse: the first one is alive.
  EXPECT_THROW(SocketServer(core, socket_path), Error);

  // And the refusal did not break the running server's socket.
  add_mult(core);
  GenerateRequest request;
  request.design = "mult";
  request.params = read_text_file(designs_path("mult.par")) + kSmallMultParams;
  const GenerateResponse response = send_generate_request(socket_path, request);
  EXPECT_TRUE(response.ok) << response.error;

  server.stop();
  std::remove(socket_path.c_str());
}

}  // namespace
}  // namespace rsg
