// Tests for the flat compactor: Bellman–Ford solving (§6.4.2), edge-order
// pass counts, the rubber-band jog removal (Figure 6.8), and DRC-validity of
// the compacted result.
#include "compact/flat_compactor.hpp"

#include <gtest/gtest.h>

#include "layout/design_rules.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

TEST(BellmanFord, SortedOrderConvergesInOnePassOnChains) {
  // A left-to-right chain whose initial order is preserved: §6.4.2 promises
  // exactly one (productive) relaxation pass.
  ConstraintSystem system;
  std::vector<int> vars;
  for (int i = 0; i < 50; ++i) {
    vars.push_back(system.add_variable("v" + std::to_string(i), i * 10));
  }
  for (int i = 1; i < 50; ++i) {
    system.add_constraint(vars[static_cast<std::size_t>(i - 1)],
                          vars[static_cast<std::size_t>(i)], 4, ConstraintKind::kSpacing);
  }
  const SolveStats sorted = solve_leftmost(system, EdgeOrder::kSorted);
  EXPECT_TRUE(sorted.converged);
  EXPECT_EQ(sorted.passes, 2);  // one productive pass + one verification pass

  const SolveStats reversed = solve_leftmost(system, EdgeOrder::kReversed);
  EXPECT_TRUE(reversed.converged);
  EXPECT_GT(reversed.passes, 10);  // worst case approaches |V|
  // Both orders give the same (least) solution.
  EXPECT_EQ(system.values[49], 49 * 4);
}

TEST(BellmanFord, InfeasibleCycleThrows) {
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 10);
  system.add_constraint(a, b, 5, ConstraintKind::kSpacing);
  system.add_constraint(b, a, 5, ConstraintKind::kSpacing);  // a >= b + 5 too
  EXPECT_THROW(solve_leftmost(system), Error);
}

TEST(BellmanFord, PitchTermsShiftBounds) {
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 0);
  const int pitch = system.add_pitch("lambda", 10);
  // b - a + λ >= 25 with λ fixed at 10: b >= a + 15.
  Constraint c;
  c.from = a;
  c.to = b;
  c.weight = 25;
  c.pitch = pitch;
  c.pitch_coeff = 1;
  system.add_constraint(c);
  solve_leftmost(system);
  EXPECT_EQ(system.values[static_cast<std::size_t>(b)], 15);
}

TEST(ConstraintSystem, RejectsPitchIndexBelowMinusOne) {
  // Regression: pitch -2 used to be accepted and silently treated as "no
  // pitch" by every consumer while pitch_coeff was ignored.
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 0);
  Constraint c;
  c.from = a;
  c.to = b;
  c.weight = 1;
  c.pitch = -2;
  EXPECT_THROW(system.add_constraint(c), Error);
}

TEST(ConstraintSystem, RejectsPitchCoeffWithoutPitchVariable) {
  ConstraintSystem system;
  const int a = system.add_variable("a", 0);
  const int b = system.add_variable("b", 0);
  Constraint c;
  c.from = a;
  c.to = b;
  c.weight = 1;
  c.pitch = -1;
  c.pitch_coeff = 1;
  EXPECT_THROW(system.add_constraint(c), Error);
}

TEST(FlatCompactor, PacksASparseRow) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kMetal1, Box(40, 0, 50, 4)},
      {Layer::kMetal1, Box(90, 0, 100, 4)},
  };
  const FlatResult result = compact_flat(boxes, CompactionRules::mosis());
  EXPECT_EQ(result.width_before, 100);
  EXPECT_EQ(result.width_after, 10 + 6 + 10 + 6 + 10);
  EXPECT_TRUE(check_design_rules(result.boxes, DesignRules::mosis_lambda()).empty());
}

TEST(FlatCompactor, CompactionIsIdempotent) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kMetal1, Box(40, 0, 50, 4)},
      {Layer::kPoly, Box(70, 0, 74, 20)},
  };
  const FlatResult once = compact_flat(boxes, CompactionRules::mosis());
  const FlatResult twice = compact_flat(once.boxes, CompactionRules::mosis());
  EXPECT_EQ(once.width_after, twice.width_after);
  EXPECT_EQ(once.boxes, twice.boxes);
}

TEST(FlatCompactor, NaiveConstraintsGiveWiderResult) {
  // Figure 6.5: a fragmented stretchable bus.
  std::vector<LayerBox> boxes;
  std::vector<bool> stretchable;
  for (int i = 0; i < 8; ++i) {
    boxes.push_back({Layer::kDiffusion, Box(i * 10, 0, (i + 1) * 10, 4)});
    stretchable.push_back(true);
  }
  FlatOptions naive;
  naive.naive_constraints = true;
  const FlatResult bad = compact_flat(boxes, CompactionRules::mosis(), naive, stretchable);
  const FlatResult good = compact_flat(boxes, CompactionRules::mosis(), {}, stretchable);
  // Naive: every adjacent pair held apart by diffusion spacing -> >= n*λ.
  EXPECT_GE(bad.width_after, 8 * 6);
  // Visibility + nets: the bus shrinks to the minimum diffusion width.
  EXPECT_EQ(good.width_after, 4);
  EXPECT_LT(good.width_after, bad.width_after / 5);
}

TEST(FlatCompactor, JogRemovalByRubberBand) {
  // Figure 6.8: a vertical wire of three stacked segments, with an
  // unrelated obstacle pushing only the middle segment's left bound. The
  // leftmost pack misaligns the segments (jog); the rubber band restores
  // alignment without growing the width.
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(30, 0, 34, 20)},    // bottom segment
      {Layer::kMetal1, Box(30, 20, 34, 40)},   // middle segment
      {Layer::kMetal1, Box(30, 40, 34, 60)},   // top segment
      {Layer::kMetal1, Box(0, 26, 20, 34)},    // obstacle at middle height only
  };
  FlatOptions plain;
  const FlatResult packed = compact_flat(boxes, CompactionRules::mosis(), plain);
  FlatOptions banded = plain;
  banded.apply_rubber_band = true;
  const FlatResult smooth = compact_flat(boxes, CompactionRules::mosis(), banded);

  EXPECT_EQ(packed.width_after, smooth.width_after);  // no width regression
  // Leftmost packing misaligns the bottom segment from the obstructed
  // middle one — the Figure 6.8 jog.
  EXPECT_NE(packed.boxes[0].box.lo.x, packed.boxes[1].box.lo.x);
  // After the rubber band, the wire segments align again.
  EXPECT_GT(smooth.rubber.jog_before, smooth.rubber.jog_after);
  EXPECT_EQ(smooth.rubber.jog_after, 0);
  EXPECT_EQ(smooth.boxes[0].box.lo.x, smooth.boxes[1].box.lo.x);
  EXPECT_EQ(smooth.boxes[1].box.lo.x, smooth.boxes[2].box.lo.x);
  EXPECT_TRUE(check_design_rules(smooth.boxes, DesignRules::mosis_lambda()).empty());
}

TEST(FlatCompactor, StretchableMaskValidation) {
  std::vector<LayerBox> boxes = {{Layer::kMetal1, Box(0, 0, 10, 4)}};
  EXPECT_THROW(compact_flat(boxes, CompactionRules::mosis(), {}, {true, false}), Error);
}

TEST(FlatCompactor, EmptyLayoutIsANoop) {
  const FlatResult result = compact_flat({}, CompactionRules::mosis());
  EXPECT_EQ(result.width_after, 0);
  EXPECT_TRUE(result.boxes.empty());
}


TEST(FlatCompactor, YCompactionByTransposition) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 4, 10)},
      {Layer::kMetal1, Box(0, 40, 4, 50)},
  };
  const FlatResult result = compact_flat_y(boxes, CompactionRules::mosis());
  EXPECT_EQ(result.width_before, 50);        // height, through the transposition
  EXPECT_EQ(result.width_after, 10 + 6 + 10);
  // x extents untouched.
  EXPECT_EQ(result.boxes[0].box.lo.x, 0);
  EXPECT_EQ(result.boxes[0].box.hi.x, 4);
}

TEST(FlatCompactor, TwoAxisCompaction) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 10, 4)},
      {Layer::kMetal1, Box(40, 30, 50, 34)},
  };
  const XyResult result = compact_flat_xy(boxes, CompactionRules::mosis());
  // The boxes are far apart in y, so the x pass stacks them both at x = 0.
  EXPECT_EQ(result.width_after, 10);
  // Then the y pass pulls them to the metal spacing.
  EXPECT_EQ(result.height_after, 4 + 6 + 4);
  EXPECT_TRUE(check_design_rules(result.boxes, DesignRules::mosis_lambda()).empty());
}

TEST(FlatCompactor, NegativeCoordinatesAreNormalized) {
  std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(-100, 0, -90, 4)},
      {Layer::kMetal1, Box(-50, 0, -40, 4)},
  };
  const FlatResult result = compact_flat(boxes, CompactionRules::mosis());
  EXPECT_EQ(result.width_after, 26);
  EXPECT_EQ(result.boxes[0].box.lo.x, 0);
}

}  // namespace
}  // namespace rsg::compact
