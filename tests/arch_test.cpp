// Tests for the Baugh–Wooley architecture model (Ch. 5, Figure 5.1/5.2):
// cell-kind predicates, combinational correctness (exhaustive for small
// widths), retiming legality, and pipelined-simulator correctness across β.
#include "arch/baugh_wooley.hpp"

#include <gtest/gtest.h>

#include "arch/retiming.hpp"
#include "arch/simulator.hpp"
#include "support/error.hpp"

namespace rsg::arch {
namespace {

TEST(BaughWooley, CellKindPredicateMatchesFigure51) {
  // 4x4: type II on left edge and bottom edge, type I in the lower-left
  // corner and everywhere else.
  const MultiplierSpec spec{4, 4};
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      const CellKind kind = carry_save_cell_kind(spec, x, y);
      const bool left = (x == 0);
      const bool bottom = (y == 3);
      const CellKind expected = (left && bottom) ? CellKind::kTypeI
                                : (left || bottom) ? CellKind::kTypeII
                                                   : CellKind::kTypeI;
      EXPECT_EQ(kind, expected) << "(" << x << "," << y << ")";
    }
  }
  EXPECT_THROW(carry_save_cell_kind(spec, 4, 0), Error);
  EXPECT_THROW(carry_save_cell_kind(spec, 0, -1), Error);
}

TEST(BaughWooley, ClockAlternatesByColumn) {
  EXPECT_EQ(clock_phase_for_column(0), ClockPhase::kPhi1);
  EXPECT_EQ(clock_phase_for_column(1), ClockPhase::kPhi2);
  EXPECT_EQ(clock_phase_for_column(2), ClockPhase::kPhi1);
}

TEST(BaughWooley, BitConversionRoundTrip) {
  for (int v = -8; v < 8; ++v) {
    EXPECT_EQ(from_bits(to_bits(v, 4)), v) << v;
  }
  EXPECT_EQ(from_bits(to_bits(-1, 6)), -1);
  EXPECT_THROW(from_bits({}), Error);
}

TEST(BaughWooley, Exhaustive4x4) {
  const MultiplierSpec spec{4, 4};
  for (int a = -8; a < 8; ++a) {
    for (int b = -8; b < 8; ++b) {
      const auto bits = evaluate_combinational(spec, to_bits(a, 4), to_bits(b, 4));
      EXPECT_EQ(from_bits(bits), static_cast<std::int64_t>(a) * b) << a << "*" << b;
    }
  }
}

TEST(BaughWooley, Exhaustive3x5Rectangular) {
  const MultiplierSpec spec{3, 5};
  for (int a = -4; a < 4; ++a) {
    for (int b = -16; b < 16; ++b) {
      const auto bits = evaluate_combinational(spec, to_bits(a, 3), to_bits(b, 5));
      EXPECT_EQ(from_bits(bits), static_cast<std::int64_t>(a) * b) << a << "*" << b;
    }
  }
}

TEST(BaughWooley, Exhaustive5x3Rectangular) {
  const MultiplierSpec spec{5, 3};
  for (int a = -16; a < 16; ++a) {
    for (int b = -4; b < 4; ++b) {
      const auto bits = evaluate_combinational(spec, to_bits(a, 5), to_bits(b, 3));
      EXPECT_EQ(from_bits(bits), static_cast<std::int64_t>(a) * b) << a << "*" << b;
    }
  }
}

TEST(BaughWooley, RandomLargeWidths) {
  std::uint64_t state = 12345;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (const int m : {8, 12, 16}) {
    for (const int n : {8, 16}) {
      const MultiplierSpec spec{m, n};
      for (int trial = 0; trial < 50; ++trial) {
        const auto a = static_cast<std::int64_t>(next() % (1ull << m)) - (1ll << (m - 1));
        const auto b = static_cast<std::int64_t>(next() % (1ull << n)) - (1ll << (n - 1));
        const auto bits = evaluate_combinational(spec, to_bits(a, m), to_bits(b, n));
        EXPECT_EQ(from_bits(bits), a * b) << m << "x" << n << ": " << a << "*" << b;
      }
    }
  }
}

TEST(BaughWooley, DepthReportsArrayPlusRipple) {
  const MultiplierSpec spec{6, 6};
  int depth = 0;
  evaluate_combinational(spec, to_bits(3, 6), to_bits(5, 6), &depth);
  EXPECT_EQ(depth, 6 + 12);
}

TEST(Retiming, CutsRespectBeta) {
  const MultiplierSpec spec{6, 6};
  for (const int beta : {1, 2, 3, 4, 8, 100}) {
    const RegisterConfiguration config = compute_register_configuration(spec, beta);
    EXPECT_LE(max_stage_depth(config), beta) << "beta " << beta;
    EXPECT_EQ(config.row_cuts.front(), 0);
    EXPECT_EQ(config.row_cuts.back(), 6);
    EXPECT_EQ(config.cpa_cuts.back(), 12);
    EXPECT_EQ(config.stages(), config.carry_save_stages + config.carry_propagate_stages);
  }
  EXPECT_THROW(compute_register_configuration(spec, 0), Error);
  EXPECT_THROW(compute_register_configuration(MultiplierSpec{1, 4}, 1), Error);
}

TEST(Retiming, BitSystolicHasOneRowPerStage) {
  // β = 1 is the bit-systolic multiplier of Figure 5.2(a): one FA delay
  // between any two registers.
  const RegisterConfiguration config = compute_register_configuration({6, 6}, 1);
  EXPECT_EQ(config.carry_save_stages, 6);
  EXPECT_EQ(config.carry_propagate_stages, 12);
  EXPECT_EQ(max_stage_depth(config), 1);
}

TEST(Retiming, RegisterCountDecreasesWithBeta) {
  // Figure 5.2's tradeoff: less pipelining, fewer registers.
  const MultiplierSpec spec{8, 8};
  int previous = compute_register_configuration(spec, 1).total_register_bits;
  for (const int beta : {2, 4, 8}) {
    const int bits = compute_register_configuration(spec, beta).total_register_bits;
    EXPECT_LT(bits, previous) << "beta " << beta;
    previous = bits;
  }
}

TEST(Retiming, InputSkewIsTriangular) {
  // Bit-systolic: multiplier bit i needs i delay registers — the triangular
  // register stacks mtopregs builds (Appendix B).
  const RegisterConfiguration config = compute_register_configuration({4, 4}, 1);
  EXPECT_EQ(config.input_skew_b, (std::vector<int>{0, 1, 2, 3}));
  const RegisterConfiguration half = compute_register_configuration({4, 4}, 2);
  EXPECT_EQ(half.input_skew_b, (std::vector<int>{0, 0, 1, 1}));
}

class PipelineTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PipelineTest, StreamsCorrectProductsAtFullThroughput) {
  const auto [m, n, beta] = GetParam();
  const MultiplierSpec spec{m, n};
  PipelinedMultiplier mult(spec, beta);

  std::uint64_t state = 99 + static_cast<std::uint64_t>(m * 1000 + n * 10 + beta);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  // Issue one pair per cycle; products must appear in order with the
  // configured latency.
  std::vector<std::int64_t> expected;
  std::vector<std::int64_t> got;
  const int jobs = 40;
  int issued = 0;
  for (int cycle = 0; issued < jobs; ++cycle) {
    const auto a = static_cast<std::int64_t>(next() % (1ull << m)) - (1ll << (m - 1));
    const auto b = static_cast<std::int64_t>(next() % (1ull << n)) - (1ll << (n - 1));
    expected.push_back(a * b);
    ++issued;
    const auto out = mult.step(a, b);
    if (out.valid) got.push_back(out.product);
    // The first product appears exactly after `latency()` issues.
    if (cycle < mult.latency() - 1) {
      EXPECT_FALSE(out.valid) << "cycle " << cycle;
    }
  }
  for (const std::int64_t p : mult.drain()) got.push_back(p);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SpecSweep, PipelineTest,
    ::testing::Values(std::tuple(4, 4, 1), std::tuple(4, 4, 2), std::tuple(6, 6, 1),
                      std::tuple(6, 6, 2), std::tuple(6, 6, 4), std::tuple(8, 8, 1),
                      std::tuple(8, 8, 3), std::tuple(8, 6, 2), std::tuple(6, 8, 2),
                      std::tuple(16, 16, 4)));

TEST(Pipeline, LatencyEqualsStages) {
  PipelinedMultiplier mult({6, 6}, 2);
  EXPECT_EQ(mult.latency(), mult.config().stages());
  // 6 rows / 2 + 12 positions / 2 = 3 + 6 stages.
  EXPECT_EQ(mult.latency(), 9);
}

TEST(Pipeline, ResetClearsState) {
  PipelinedMultiplier mult({4, 4}, 1);
  mult.step(3, 3);
  mult.reset();
  EXPECT_EQ(mult.cycles(), 0);
  const auto out = mult.step(2, 2);
  EXPECT_FALSE(out.valid);
}

}  // namespace
}  // namespace rsg::arch
