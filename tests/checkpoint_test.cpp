// Checkpoint/restart for long compaction runs: the schedule's per-round
// checkpoint sink, bit-for-bit resume from every round boundary, the RSGC
// file format's round trip, its corruption/truncation/version defenses,
// and the generator-level --checkpoint-out → --checkpoint-in loop.
#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compact/synth_design.hpp"
#include "compact/xy_schedule.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

using compact::CompactionRules;
using compact::RoundStats;
using compact::SynthField;
using compact::XyCheckpoint;
using compact::XyScheduleOptions;
using compact::XyScheduleResult;
using compact::compact_flat_schedule;
using compact::make_random_field;

void expect_rounds_equal(const std::vector<RoundStats>& a, const std::vector<RoundStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].width_delta, b[i].width_delta);
    EXPECT_EQ(a[i].height_delta, b[i].height_delta);
    EXPECT_EQ(a[i].x_skipped, b[i].x_skipped);
    EXPECT_EQ(a[i].y_skipped, b[i].y_skipped);
    EXPECT_EQ(a[i].constraints_emitted, b[i].constraints_emitted);
    EXPECT_EQ(a[i].partners_reswept, b[i].partners_reswept);
    EXPECT_EQ(a[i].partners_reused, b[i].partners_reused);
    EXPECT_EQ(a[i].solve_pops, b[i].solve_pops);
    EXPECT_EQ(a[i].warm_x, b[i].warm_x);
    EXPECT_EQ(a[i].warm_y, b[i].warm_y);
    EXPECT_EQ(a[i].solve_shards, b[i].solve_shards);
    EXPECT_EQ(a[i].reconcile_rounds, b[i].reconcile_rounds);
    EXPECT_EQ(a[i].boundary_constraints, b[i].boundary_constraints);
    EXPECT_EQ(a[i].boundary_churn, b[i].boundary_churn);
  }
}

void expect_checkpoints_equal(const XyCheckpoint& a, const XyCheckpoint& b) {
  EXPECT_EQ(a.rounds_done, b.rounds_done);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.x_infeasible, b.x_infeasible);
  EXPECT_EQ(a.y_infeasible, b.y_infeasible);
  EXPECT_EQ(a.width_before, b.width_before);
  EXPECT_EQ(a.height_before, b.height_before);
  EXPECT_EQ(a.boxes, b.boxes);
  EXPECT_EQ(a.stretchable, b.stretchable);
  expect_rounds_equal(a.round_stats, b.round_stats);
}

std::string checkpoint_bytes(const XyCheckpoint& checkpoint) {
  std::ostringstream out;
  write_compaction_checkpoint(out, checkpoint);
  return out.str();
}

TEST(Checkpoint, SinkReceivesEveryRoundAndResumeIsBitForBit) {
  // Run a schedule to completion collecting the per-round checkpoints,
  // then restart from EVERY round boundary: the resumed run must land on
  // the uninterrupted run's geometry, round count, and flags exactly.
  const SynthField field = make_random_field(17, 30);
  XyScheduleOptions schedule;
  schedule.max_rounds = 6;
  std::vector<XyCheckpoint> checkpoints;
  schedule.checkpoint_sink = [&](const XyCheckpoint& ck) { checkpoints.push_back(ck); };
  const XyScheduleResult full = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, schedule, field.stretchable);
  ASSERT_EQ(checkpoints.size(), static_cast<std::size_t>(full.rounds));

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    XyScheduleOptions resume_options;
    resume_options.max_rounds = 6;
    resume_options.resume = &checkpoints[k];
    // The boxes argument is ignored on resume; pass the originals anyway.
    const XyScheduleResult resumed = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, resume_options, field.stretchable);
    ASSERT_EQ(resumed.boxes, full.boxes) << "resume after round " << k + 1;
    EXPECT_EQ(resumed.rounds, full.rounds) << "resume after round " << k + 1;
    EXPECT_EQ(resumed.converged, full.converged);
    EXPECT_EQ(resumed.width_after, full.width_after);
    EXPECT_EQ(resumed.height_after, full.height_after);
    EXPECT_EQ(resumed.width_before, full.width_before);
    EXPECT_EQ(resumed.height_before, full.height_before);
  }
}

TEST(Checkpoint, ResumeIsBitForBitAcrossAHundredFields) {
  // The property corpus: for every seeded field, interrupt after round 1
  // and resume — the restart must be indistinguishable from never stopping.
  for (std::uint32_t seed = 0; seed < 110; ++seed) {
    const SynthField field = make_random_field(seed, 4 + static_cast<int>(seed % 30));
    XyScheduleOptions schedule;
    schedule.max_rounds = 4;
    std::vector<XyCheckpoint> checkpoints;
    schedule.checkpoint_sink = [&](const XyCheckpoint& ck) { checkpoints.push_back(ck); };
    const XyScheduleResult full = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, schedule, field.stretchable);
    ASSERT_FALSE(checkpoints.empty()) << "seed " << seed;

    // Serialize through the RSGC format, not just the in-memory struct:
    // the resumed state is exactly what a file-based restart would see.
    const std::string bytes = checkpoint_bytes(checkpoints.front());
    const XyCheckpoint restored = read_compaction_checkpoint(bytes.data(), bytes.size());
    XyScheduleOptions resume_options;
    resume_options.max_rounds = 4;
    resume_options.resume = &restored;
    const XyScheduleResult resumed = compact_flat_schedule(
        field.boxes, CompactionRules::mosis(), {}, resume_options, field.stretchable);
    ASSERT_EQ(resumed.boxes, full.boxes) << "seed " << seed;
    EXPECT_EQ(resumed.rounds, full.rounds) << "seed " << seed;
    EXPECT_EQ(resumed.converged, full.converged) << "seed " << seed;
  }
}

TEST(Checkpoint, FileRoundTripPreservesEveryField) {
  const SynthField field = make_random_field(23, 25);
  XyScheduleOptions schedule;
  schedule.max_rounds = 3;
  schedule.stop_when_converged = false;
  XyCheckpoint last;
  schedule.checkpoint_sink = [&](const XyCheckpoint& ck) { last = ck; };
  compact_flat_schedule(field.boxes, CompactionRules::mosis(), {}, schedule,
                        field.stretchable);
  ASSERT_EQ(last.rounds_done, 3);
  ASSERT_FALSE(last.boxes.empty());
  ASSERT_EQ(last.round_stats.size(), 3u);

  const std::string path = testing::TempDir() + "rsg_checkpoint_roundtrip.rsgc";
  const CheckpointWriteStats stats = write_compaction_checkpoint_file(path, last);
  EXPECT_EQ(stats.boxes, last.boxes.size());
  EXPECT_EQ(stats.rounds, last.round_stats.size());
  EXPECT_GT(stats.file_bytes, sizeof(SnapshotHeader));

  const XyCheckpoint restored = read_compaction_checkpoint_file(path);
  expect_checkpoints_equal(last, restored);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptionTruncationAndVersionSkew) {
  const SynthField field = make_random_field(7, 20);
  XyScheduleOptions schedule;
  schedule.max_rounds = 2;
  schedule.stop_when_converged = false;
  XyCheckpoint last;
  schedule.checkpoint_sink = [&](const XyCheckpoint& ck) { last = ck; };
  compact_flat_schedule(field.boxes, CompactionRules::mosis(), {}, schedule,
                        field.stretchable);
  const std::string good = checkpoint_bytes(last);
  ASSERT_GT(good.size(), 128u);

  // Sanity: the pristine image reads back.
  read_compaction_checkpoint(good.data(), good.size());

  // A flipped payload byte fails a section CRC.
  {
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x40;
    EXPECT_THROW(read_compaction_checkpoint(bad.data(), bad.size()), Error);
  }
  // Truncation cannot pass the bounds checks.
  EXPECT_THROW(read_compaction_checkpoint(good.data(), good.size() / 2), Error);
  EXPECT_THROW(read_compaction_checkpoint(good.data(), 16), Error);
  // A wrong magic is rejected before anything else.
  {
    std::string bad = good;
    bad[0] = 'X';
    EXPECT_THROW(read_compaction_checkpoint(bad.data(), bad.size()), Error);
  }
  // A newer MAJOR version is rejected even with a valid header CRC.
  {
    std::string bad = good;
    const std::uint16_t major = kCheckpointMajor + 1;
    std::memcpy(&bad[4], &major, sizeof(major));
    const std::uint32_t crc = snapshot_crc32(bad.data(), 60);
    std::memcpy(&bad[60], &crc, sizeof(crc));
    EXPECT_THROW(read_compaction_checkpoint(bad.data(), bad.size()), Error);
  }
  // A newer MINOR version is accepted (additive evolution only).
  {
    std::string ok = good;
    const std::uint16_t minor = kCheckpointMinor + 1;
    std::memcpy(&ok[6], &minor, sizeof(minor));
    const std::uint32_t crc = snapshot_crc32(ok.data(), 60);
    std::memcpy(&ok[60], &crc, sizeof(crc));
    const XyCheckpoint restored = read_compaction_checkpoint(ok.data(), ok.size());
    expect_checkpoints_equal(last, restored);
  }
}

TEST(Checkpoint, GeneratorCheckpointOutThenInReproducesTheRun) {
  // The pipeline-level loop rsg_cli exposes as --checkpoint-out /
  // --checkpoint-in: a run that wrote checkpoints, restarted from the file,
  // must emit the identical CIF.
  constexpr const char* kSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
  constexpr const char* kDesign = R"(
(macro mrow (n)
  (locals foo)
  (do (i 1 (+ i 1) (> i n))
      (mk_instance b.i brick)
      (cond ((> i 1) (connect b.(- i 1) b.i 1)))))
(assign r (mrow n))
(mk_cell "row" (subcell r b.1))
)";
  const std::string path = testing::TempDir() + "rsg_checkpoint_generator.rsgc";

  Generator writer;
  CompactionRequest writing;
  writing.enabled = true;
  writing.checkpoint_out = path;
  writer.set_compaction(writing);
  const GeneratorResult original = writer.run(kSample, kDesign, "n = 6");
  ASSERT_TRUE(original.compacted);

  // The file holds the final completed round; resuming from it must not
  // redo any work and must reproduce the output byte for byte.
  const XyCheckpoint final_round = read_compaction_checkpoint_file(path);
  EXPECT_EQ(final_round.rounds_done, original.compaction.rounds);

  Generator resumer;
  CompactionRequest resuming;
  resuming.enabled = true;
  resuming.checkpoint_in = path;
  resumer.set_compaction(resuming);
  const GeneratorResult resumed = resumer.run(kSample, kDesign, "n = 6");
  ASSERT_TRUE(resumed.compacted);
  EXPECT_EQ(resumed.output, original.output);
  EXPECT_EQ(resumed.compaction.boxes, original.compaction.boxes);
  EXPECT_EQ(resumed.compaction.width_after, original.compaction.width_after);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rsg
