// Tests for truth tables and the RSG PLA / decoder generators (E10/E11):
// the same sample layout must build both architectures, and the generated
// layout's crosspoint pattern must recover the input personality exactly.
#include "pla/pla_builder.hpp"

#include <gtest/gtest.h>

#include "layout/flatten.hpp"
#include "pla/truth_table.hpp"
#include "support/error.hpp"

namespace rsg::pla {
namespace {

TEST(TruthTable, ParseAndEvaluate) {
  const TruthTable table = TruthTable::parse(
      "; two-bit example\n"
      "10 10\n"
      "01 11\n"
      "-1 01\n");
  EXPECT_EQ(table.num_inputs(), 2);
  EXPECT_EQ(table.num_outputs(), 2);
  EXPECT_EQ(table.num_terms(), 3);
  EXPECT_EQ(table.evaluate({true, false}), (std::vector<bool>{true, false}));
  EXPECT_EQ(table.evaluate({false, true}), (std::vector<bool>{true, true}));
  EXPECT_EQ(table.evaluate({true, true}), (std::vector<bool>{false, true}));
  EXPECT_EQ(table.evaluate({false, false}), (std::vector<bool>{false, false}));
}

TEST(TruthTable, ParseErrors) {
  EXPECT_THROW(TruthTable::parse(""), Error);
  EXPECT_THROW(TruthTable::parse("10"), Error);
  EXPECT_THROW(TruthTable::parse("1x 10"), Error);
  EXPECT_THROW(TruthTable::parse("10 2"), Error);
}

TEST(TruthTable, DecoderPersonality) {
  const TruthTable dec = TruthTable::decoder(3);
  EXPECT_EQ(dec.num_inputs(), 3);
  EXPECT_EQ(dec.num_outputs(), 8);
  EXPECT_EQ(dec.num_terms(), 8);
  for (int code = 0; code < 8; ++code) {
    std::vector<bool> in;
    for (int i = 0; i < 3; ++i) in.push_back(((code >> i) & 1) != 0);
    const auto out = dec.evaluate(in);
    for (int line = 0; line < 8; ++line) {
      EXPECT_EQ(out[static_cast<std::size_t>(line)], line == code);
    }
  }
}

TEST(TruthTable, RandomIsDeterministic) {
  const TruthTable a = TruthTable::random(4, 3, 6, 42);
  const TruthTable b = TruthTable::random(4, 3, 6, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_terms(), 6);
}

TEST(PlaBuilder, GeneratesAndRecoversPersonality) {
  const TruthTable table = TruthTable::parse(
      "10-1 101\n"
      "01-0 110\n"
      "--11 011\n"
      "0--- 100\n");
  rsg::Generator generator;
  const rsg::GeneratorResult result = generate_pla(generator, table);
  ASSERT_NE(result.top, nullptr);
  EXPECT_EQ(result.top->name(), "pla");

  const TruthTable recovered = recover_truth_table(*result.top, 4, 3, 4);
  EXPECT_EQ(recovered, table);
}

TEST(PlaBuilder, StructuralCounts) {
  const TruthTable table = TruthTable::random(5, 4, 7, 7);
  rsg::Generator generator;
  const rsg::GeneratorResult result = generate_pla(generator, table);

  std::map<std::string, int> counts;
  for (const rsg::FlatInstance& fi : rsg::flatten_instances(*result.top)) {
    ++counts[fi.cell->name()];
  }
  EXPECT_EQ(counts["in-buf"], 5);
  EXPECT_EQ(counts["and-cell"], 5 * 7);
  EXPECT_EQ(counts["connect-ao"], 7);
  EXPECT_EQ(counts["or-cell"], 4 * 7);
  EXPECT_EQ(counts["out-buf"], 4);
  // Every non-don't-care input bit yields one AND crosspoint.
  int expected_and = 0;
  int expected_or = 0;
  for (const Term& term : table.terms()) {
    for (const InBit bit : term.inputs) expected_and += (bit != InBit::kDontCare);
    for (const bool bit : term.outputs) expected_or += bit;
  }
  EXPECT_EQ(counts["and-1"] + counts["and-0"], expected_and);
  EXPECT_EQ(counts["or-x"], expected_or);
}

TEST(PlaBuilder, FunctionalEquivalenceThroughRecovery) {
  // Generate, recover, and check the recovered logic behaves identically on
  // every input assignment (n is small enough to sweep exhaustively).
  const TruthTable table = TruthTable::random(4, 3, 6, 123);
  rsg::Generator generator;
  const rsg::GeneratorResult result = generate_pla(generator, table);
  const TruthTable recovered = recover_truth_table(*result.top, 4, 3, 6);
  for (int v = 0; v < 16; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back(((v >> i) & 1) != 0);
    EXPECT_EQ(recovered.evaluate(in), table.evaluate(in)) << "input " << v;
  }
}

TEST(Decoder, SameSampleLayoutBuildsADecoder) {
  // §1.2.2: requiring the sample to look like the finished product would
  // "reduce the scope within which any given sample layout may be used" —
  // here the PLA sample builds a 3-to-8 decoder.
  rsg::Generator generator;
  const rsg::GeneratorResult result = generate_decoder(generator, 3);
  ASSERT_NE(result.top, nullptr);
  EXPECT_EQ(result.top->name(), "decoder");

  std::map<std::string, int> counts;
  for (const rsg::FlatInstance& fi : rsg::flatten_instances(*result.top)) {
    ++counts[fi.cell->name()];
  }
  EXPECT_EQ(counts["in-buf"], 3);
  EXPECT_EQ(counts["and-cell"], 3 * 8);
  EXPECT_EQ(counts["connect-ao"], 8);   // row output buffers
  EXPECT_EQ(counts["or-cell"], 0);      // no OR plane in a decoder
  EXPECT_EQ(counts["and-1"] + counts["and-0"], 3 * 8);  // full minterms
}

TEST(Decoder, MintermPatternIsCorrect) {
  rsg::Generator generator;
  const rsg::GeneratorResult result = generate_decoder(generator, 3);
  // Recover the AND plane only: 3 inputs, 8 terms, 0 outputs.
  const TruthTable recovered = recover_truth_table(*result.top, 3, 0, 8);
  const TruthTable expected_src = TruthTable::decoder(3);
  ASSERT_EQ(recovered.num_terms(), 8);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(recovered.terms()[static_cast<std::size_t>(t)].inputs,
              expected_src.terms()[static_cast<std::size_t>(t)].inputs)
        << "minterm row " << t;
  }
}

TEST(PlaBuilder, EncodingTableConversion) {
  const TruthTable table = TruthTable::parse("1-0 01\n");
  const auto enc = to_encoding_table(table);
  EXPECT_EQ(enc.inputs, 3);
  EXPECT_EQ(enc.outputs, 2);
  ASSERT_EQ(enc.in.size(), 1u);
  EXPECT_EQ(enc.in[0], (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(enc.out[0], (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace rsg::pla
