// Tests for the EXCL-style extractor: devices from poly-over-diffusion,
// nets across cuts, and the architectural cross-check on generated layouts
// (the Ch. 5 extraction loop).
#include "extract/extractor.hpp"

#include <gtest/gtest.h>

#include "compact/layer_expand.hpp"
#include "io/param_file.hpp"
#include "layout/flatten.hpp"
#include "rsg/generator.hpp"

namespace rsg::extract {
namespace {

TEST(Extractor, SingleTransistor) {
  const std::vector<LayerBox> boxes = {
      {Layer::kDiffusion, Box(0, 0, 20, 8)},
      {Layer::kPoly, Box(8, -4, 12, 12)},
  };
  const Netlist netlist = extract(boxes);
  ASSERT_EQ(netlist.device_count(), 1u);
  EXPECT_EQ(netlist.devices[0].channel, Box(8, 0, 12, 8));
  // Poly and diffusion are separate nets (a gate is not a contact).
  EXPECT_EQ(netlist.num_nets, 2u);
  EXPECT_NE(netlist.box_net[0], netlist.box_net[1]);
}

TEST(Extractor, FragmentedGateIsOneDevice) {
  // One poly strip over two abutting diffusion fragments: one channel.
  const std::vector<LayerBox> boxes = {
      {Layer::kDiffusion, Box(0, 0, 10, 8)},
      {Layer::kDiffusion, Box(10, 0, 20, 8)},
      {Layer::kPoly, Box(8, -4, 12, 12)},
  };
  const Netlist netlist = extract(boxes);
  EXPECT_EQ(netlist.device_count(), 1u);
  EXPECT_EQ(netlist.num_nets, 2u);  // joined diffusion + poly
}

TEST(Extractor, TwoGatesOnOneDiffusionAreTwoDevices) {
  const std::vector<LayerBox> boxes = {
      {Layer::kDiffusion, Box(0, 0, 30, 8)},
      {Layer::kPoly, Box(8, -4, 12, 12)},
      {Layer::kPoly, Box(20, -4, 24, 12)},
  };
  const Netlist netlist = extract(boxes);
  EXPECT_EQ(netlist.device_count(), 2u);
  EXPECT_EQ(netlist.num_nets, 3u);
}

TEST(Extractor, CutConnectsMetalToPoly) {
  const std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 20, 4)},
      {Layer::kPoly, Box(0, 0, 4, 20)},
      {Layer::kContactCut, Box(1, 1, 3, 3)},
  };
  const Netlist netlist = extract(boxes);
  EXPECT_EQ(netlist.num_nets, 1u);
  EXPECT_EQ(netlist.box_net[0], netlist.box_net[1]);
}

TEST(Extractor, WithoutCutLayersStaySeparate) {
  const std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 0, 20, 4)},
      {Layer::kPoly, Box(0, 0, 4, 20)},
  };
  const Netlist netlist = extract(boxes);
  EXPECT_EQ(netlist.num_nets, 2u);
}

TEST(Extractor, ExpandedContactConnects) {
  // Symbolic contact -> expand -> extract: the full §6.4.3 pipeline.
  const std::vector<LayerBox> boxes = compact::expand_contacts({
      {Layer::kContact, Box(0, 0, 8, 8)},
      {Layer::kMetal1, Box(8, 2, 30, 6)},   // abuts the contact's metal
      {Layer::kPoly, Box(-20, 2, 0, 6)},    // abuts the contact's poly
  });
  const Netlist netlist = extract(boxes);
  EXPECT_EQ(netlist.num_nets, 1u);
}

TEST(Extractor, MultiplierDeviceCountMatchesArchitecture) {
  // Generate the 6x6 multiplier and extract it. Each core cell contributes
  // two transistors (two poly input lines over one diffusion area); each
  // register cell one. Masks contribute none (implant/cut only).
  Generator generator;
  std::string params = read_text_file(designs_path("mult.par"));
  params += "\nasize = 6\n";
  const GeneratorResult result =
      generator.run(read_text_file(designs_path("mult.sample")),
                    read_text_file(designs_path("mult.rsg")), params);

  const Netlist netlist = extract(flatten_boxes(*result.top));
  std::size_t cores = 0;
  std::size_t registers = 0;
  for (const FlatInstance& fi : flatten_instances(*result.top)) {
    if (fi.cell->name() == "cell") ++cores;
    if (fi.cell->name() == "tr" || fi.cell->name() == "br" || fi.cell->name() == "rr") {
      ++registers;
    }
  }
  EXPECT_EQ(netlist.device_count(), 2 * cores + registers);
}

TEST(Extractor, EmptyInput) {
  const Netlist netlist = extract({});
  EXPECT_EQ(netlist.num_nets, 0u);
  EXPECT_EQ(netlist.device_count(), 0u);
}

}  // namespace
}  // namespace rsg::extract
