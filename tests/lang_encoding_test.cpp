// Tests for the encoding-table builtins (§4: "primitives for manipulating
// encoding tables such as PLA truth tables") and for Value semantics used
// throughout the interpreter.
#include <gtest/gtest.h>

#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "support/error.hpp"

namespace rsg::lang {
namespace {

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest() : interp_(cells_, interfaces_, graph_) {
    table_.inputs = 3;
    table_.outputs = 2;
    table_.in = {{1, 0, 2}, {2, 2, 1}};
    table_.out = {{1, 0}, {1, 1}};
    interp_.set_encoding_table(&table_);
  }

  Value run(const std::string& source) { return interp_.run(parse_program(source)); }

  CellTable cells_;
  InterfaceTable interfaces_;
  ConnectivityGraph graph_;
  Interpreter interp_;
  Interpreter::EncodingTable table_;
};

TEST_F(EncodingTest, DimensionsAndAccess) {
  EXPECT_EQ(run("(tt_inputs)").as_integer(), 3);
  EXPECT_EQ(run("(tt_outputs)").as_integer(), 2);
  EXPECT_EQ(run("(tt_terms)").as_integer(), 2);
  EXPECT_EQ(run("(tt_in 1 1)").as_integer(), 1);
  EXPECT_EQ(run("(tt_in 1 3)").as_integer(), 2);  // don't-care
  EXPECT_EQ(run("(tt_in 2 3)").as_integer(), 1);
  EXPECT_EQ(run("(tt_out 1 2)").as_integer(), 0);
  EXPECT_EQ(run("(tt_out 2 2)").as_integer(), 1);
}

TEST_F(EncodingTest, IndicesAreOneBasedAndChecked) {
  EXPECT_THROW(run("(tt_in 0 1)"), LangError);
  EXPECT_THROW(run("(tt_in 3 1)"), LangError);
  EXPECT_THROW(run("(tt_in 1 4)"), LangError);
  EXPECT_THROW(run("(tt_out 1 3)"), LangError);
  EXPECT_THROW(run("(tt_out 0 1)"), LangError);
}

TEST_F(EncodingTest, UsableInsideLoops) {
  // Sum all crosspoints, the way a design file would count masks.
  const Value v = run(
      "(assign n 0)"
      "(do (t 1 (+ t 1) (> t (tt_terms)))"
      "    (do (i 1 (+ i 1) (> i (tt_inputs)))"
      "        (cond ((/= (tt_in t i) 2) (assign n (+ n 1))))))"
      "n");
  EXPECT_EQ(v.as_integer(), 3);  // terms: 1,0 care in t1; one care in t2
}

TEST(EncodingAbsent, BuiltinsFailWithoutATable) {
  CellTable cells;
  InterfaceTable interfaces;
  ConnectivityGraph graph;
  Interpreter interp(cells, interfaces, graph);
  EXPECT_THROW(interp.run(parse_program("(tt_inputs)")), LangError);
}

// --- Value semantics ---------------------------------------------------------

TEST(Value, TypeChecksAndNames) {
  EXPECT_THROW(Value::integer(1).as_string(), Error);
  EXPECT_THROW(Value::string("x").as_integer(), Error);
  EXPECT_THROW(Value::nil().as_node(), Error);
  EXPECT_STREQ(Value::integer(1).type_name(), "integer");
  EXPECT_STREQ(Value::symbol("s").type_name(), "symbol");
  EXPECT_STREQ(Value::nil().type_name(), "nil");
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::nil().truthy());
  EXPECT_FALSE(Value::boolean(false).truthy());
  EXPECT_FALSE(Value::integer(0).truthy());
  EXPECT_TRUE(Value::integer(-1).truthy());
  EXPECT_TRUE(Value::string("").truthy());
  EXPECT_TRUE(Value::symbol("x").truthy());
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value::integer(42).to_display_string(), "42");
  EXPECT_EQ(Value::boolean(true).to_display_string(), "true");
  EXPECT_EQ(Value::string("hi").to_display_string(), "hi");
  EXPECT_EQ(Value::symbol("sym").to_display_string(), "sym");
  EXPECT_EQ(Value::nil().to_display_string(), "nil");
  Cell cell("acell");
  EXPECT_EQ(Value::cell(&cell).to_display_string(), "<cell acell>");
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_FALSE(Value::integer(3) == Value::integer(4));
  EXPECT_FALSE(Value::integer(1) == Value::boolean(true));
  EXPECT_EQ(Value::symbol("a"), Value::symbol("a"));
  EXPECT_FALSE(Value::symbol("a") == Value::string("a"));
}

}  // namespace
}  // namespace rsg::lang
