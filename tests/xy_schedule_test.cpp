// Tests for the alternating x/y compaction schedule and its wiring into the
// rsg::Generator pipeline, plus the transpose property that pins y
// compaction to x compaction on 100+ seeded synthetic fields.
#include "compact/xy_schedule.hpp"

#include <gtest/gtest.h>

#include "compact/synth_design.hpp"
#include "layout/design_rules.hpp"
#include "layout/flatten.hpp"
#include "pla/pla_builder.hpp"
#include "pla/truth_table.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

std::vector<LayerBox> transposed(const std::vector<LayerBox>& boxes) {
  std::vector<LayerBox> out;
  out.reserve(boxes.size());
  for (const LayerBox& lb : boxes) {
    out.push_back({lb.layer, Box(lb.box.lo.y, lb.box.lo.x, lb.box.hi.y, lb.box.hi.x)});
  }
  return out;
}

TEST(XySchedule, YCompactionIsTransposedXCompaction) {
  // compact_flat_y(boxes) == transpose(compact_flat(transpose(boxes))) on
  // 100+ seeded fields — the contract that makes the alternating schedule a
  // pure composition of one-dimensional passes (§6.3).
  for (std::uint32_t seed = 0; seed < 110; ++seed) {
    const SynthField field = make_random_field(seed, 4 + static_cast<int>(seed % 30));
    const FlatResult y_pass =
        compact_flat_y(field.boxes, CompactionRules::mosis(), {}, field.stretchable);
    const FlatResult x_of_transpose =
        compact_flat(transposed(field.boxes), CompactionRules::mosis(), {}, field.stretchable);
    EXPECT_EQ(y_pass.boxes, transposed(x_of_transpose.boxes)) << "seed " << seed;
    EXPECT_EQ(y_pass.width_after, x_of_transpose.width_after) << "seed " << seed;
    EXPECT_EQ(y_pass.constraint_count, x_of_transpose.constraint_count) << "seed " << seed;
  }
}

TEST(XySchedule, ConvergesOnGridField) {
  const SynthField field = make_grid_field(8, 8);
  XyScheduleOptions schedule;
  schedule.max_rounds = 8;
  const XyScheduleResult result = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, schedule, field.stretchable);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rounds, schedule.max_rounds);
  EXPECT_LT(result.width_after, result.width_before);
  EXPECT_LT(result.height_after, result.height_before);
}

TEST(XySchedule, ConvergedFixpointIsStable) {
  // Once a round leaves the geometry unchanged, every further round is a
  // no-op: running past convergence must reproduce the converged geometry
  // exactly.
  const SynthField field = make_random_field(99, 40);
  XyScheduleOptions to_convergence;
  to_convergence.max_rounds = 16;
  const XyScheduleResult converged = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, to_convergence, field.stretchable);
  ASSERT_TRUE(converged.converged);

  XyScheduleOptions overrun;
  overrun.max_rounds = converged.rounds + 3;
  overrun.stop_when_converged = false;
  const XyScheduleResult extra = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, overrun, field.stretchable);
  EXPECT_EQ(converged.boxes, extra.boxes);
  EXPECT_EQ(converged.width_after, extra.width_after);
  EXPECT_EQ(converged.height_after, extra.height_after);
}

TEST(XySchedule, SecondRoundCanBeatSingleXyPass) {
  // The workload alternation exists for: the y pass can drop a box out of
  // a band, freeing a second x pass to reclaim width a single xy pass
  // leaves behind. Here A and B share a band (x pass holds B right of A),
  // a narrow blocker C pins A's height — so the y pass drops only B, and
  // the second x pass slides B over the gap beside C.
  const std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 10, 10, 14)},   // A
      {Layer::kMetal1, Box(16, 10, 26, 14)},  // B
      {Layer::kMetal1, Box(0, 0, 4, 4)},      // C (blocker under A)
  };
  const XyResult one = compact_flat_xy(boxes, CompactionRules::mosis());
  XyScheduleOptions schedule;
  schedule.max_rounds = 8;
  const XyScheduleResult many =
      compact_flat_schedule(boxes, CompactionRules::mosis(), {}, schedule);
  EXPECT_TRUE(many.converged);
  EXPECT_EQ(one.width_after, 26);
  EXPECT_EQ(many.width_after, 20);
  EXPECT_LE(many.height_after, one.height_after);
}

TEST(XySchedule, GeneratorRunsRequestedCompaction) {
  // The §6.4 compactor wired into the Figure 1.1 driver: a RAM-style row
  // design asks for post-generation compaction programmatically.
  constexpr const char* kSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
  constexpr const char* kDesign = R"(
(macro mrow (n)
  (locals foo)
  (do (i 1 (+ i 1) (> i n))
      (mk_instance b.i brick)
      (cond ((> i 1) (connect b.(- i 1) b.i 1)))))
(assign r (mrow n))
(mk_cell "row" (subcell r b.1))
)";
  Generator plain;
  const GeneratorResult loose = plain.run(kSample, kDesign, "n = 6");
  EXPECT_FALSE(loose.compacted);

  Generator compacting;
  CompactionRequest request;
  request.enabled = true;
  compacting.set_compaction(request);
  const GeneratorResult tight = compacting.run(kSample, kDesign, "n = 6");
  ASSERT_TRUE(tight.compacted);
  EXPECT_EQ(tight.top->name(), "row_compacted");
  // The sample leaves 20 units of slack per interface; the schedule closes
  // each gap to the metal1 spacing.
  EXPECT_EQ(tight.compaction.width_before, 5 * 40 + 20);
  EXPECT_EQ(tight.compaction.width_after, 6 * 20 + 5 * 6);
  EXPECT_TRUE(check_design_rules(flatten_boxes(*tight.top), DesignRules::mosis_lambda()).empty());
  EXPECT_NE(tight.output.find("row_compacted"), std::string::npos);
}

TEST(XySchedule, CompactDirectiveEnablesCompaction) {
  // `.compact:xy` in the parameter file requests the same through data.
  constexpr const char* kSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
  constexpr const char* kDesign = R"(
(mk_instance x brick)
(mk_instance y brick)
(connect x y 1)
(mk_cell "pair" x)
)";
  Generator generator;
  const GeneratorResult result = generator.run(kSample, kDesign, ".compact:xy\n");
  ASSERT_TRUE(result.compacted);
  EXPECT_LT(result.compaction.width_after, result.compaction.width_before);

  Generator misspelled;
  EXPECT_THROW(misspelled.run(kSample, kDesign, ".compact:x\n"), Error);
}

TEST(XySchedule, GeneratedPlaCompactsBestEffort) {
  // The PLA generator output (E10) through the same hook. Its sample cells
  // sit closer than the MOSIS table allows in x (rigid overlaps make that
  // axis's constraint system infeasible), so the best-effort schedule must
  // skip x, still compact y, and record the skip.
  pla::TruthTable table = pla::TruthTable::parse(
      "10 10\n"
      "01 11\n"
      "-1 01\n");
  Generator generator;
  CompactionRequest request;
  request.enabled = true;
  generator.set_compaction(request);
  const GeneratorResult result = pla::generate_pla(generator, table);
  ASSERT_TRUE(result.compacted);
  EXPECT_TRUE(result.compaction.converged);
  EXPECT_TRUE(result.compaction.x_infeasible);
  EXPECT_LT(result.compaction.height_after, result.compaction.height_before);
  EXPECT_LE(result.compaction.width_after, result.compaction.width_before);
  EXPECT_FALSE(flatten_boxes(*result.top).empty());
}

}  // namespace
}  // namespace rsg::compact
