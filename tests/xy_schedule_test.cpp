// Tests for the alternating x/y compaction schedule and its wiring into the
// rsg::Generator pipeline, plus the transpose property that pins y
// compaction to x compaction on 100+ seeded synthetic fields.
#include "compact/xy_schedule.hpp"

#include <gtest/gtest.h>

#include "compact/synth_design.hpp"
#include "layout/design_rules.hpp"
#include "layout/flatten.hpp"
#include "pla/pla_builder.hpp"
#include "pla/truth_table.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

std::vector<LayerBox> transposed(const std::vector<LayerBox>& boxes) {
  std::vector<LayerBox> out;
  out.reserve(boxes.size());
  for (const LayerBox& lb : boxes) {
    out.push_back({lb.layer, Box(lb.box.lo.y, lb.box.lo.x, lb.box.hi.y, lb.box.hi.x)});
  }
  return out;
}

TEST(XySchedule, YCompactionIsTransposedXCompaction) {
  // compact_flat_y(boxes) == transpose(compact_flat(transpose(boxes))) on
  // 100+ seeded fields — the contract that makes the alternating schedule a
  // pure composition of one-dimensional passes (§6.3).
  for (std::uint32_t seed = 0; seed < 110; ++seed) {
    const SynthField field = make_random_field(seed, 4 + static_cast<int>(seed % 30));
    const FlatResult y_pass =
        compact_flat_y(field.boxes, CompactionRules::mosis(), {}, field.stretchable);
    const FlatResult x_of_transpose =
        compact_flat(transposed(field.boxes), CompactionRules::mosis(), {}, field.stretchable);
    EXPECT_EQ(y_pass.boxes, transposed(x_of_transpose.boxes)) << "seed " << seed;
    EXPECT_EQ(y_pass.width_after, x_of_transpose.width_after) << "seed " << seed;
    EXPECT_EQ(y_pass.constraint_count, x_of_transpose.constraint_count) << "seed " << seed;
  }
}

TEST(LeafXySchedule, LeafYCompactionPinsTransposedFigure63Cell) {
  // The vertical mirror of leafcell_test's PitchShrinksToPackedMinimum:
  // two metal bars stacked in y, a vertical self-interface of pitch 60.
  // Packed: bars at y [0,10] and [16,26] (metal spacing 6), next instance's
  // first bar 6 beyond y=26: λ_y = 32. x must come through untouched and
  // pitch_y must carry the interface's (zero) x component.
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
  a.add_box(Layer::kMetal1, Box(0, 30, 4, 40));
  interfaces.declare("a", "a", 1, Interface{{0, 60}, Orientation::kNorth});
  const LeafResult result = compact_leaf_cells_y(cells, interfaces, {"a"}, {{"a", "a", 1, 1.0}},
                                                 CompactionRules::mosis());
  ASSERT_EQ(result.pitches.size(), 1u);
  EXPECT_EQ(result.original_pitches[0], 60);
  EXPECT_EQ(result.pitches[0], 32);
  EXPECT_EQ(result.pitch_y[0], 0);  // the untouched x component
  const auto& boxes = result.cells.at("a");
  EXPECT_EQ(boxes[0].box, Box(0, 0, 4, 10));
  EXPECT_EQ(boxes[1].box, Box(0, 16, 4, 26));

  // Rebuild is axis-checked: the y result must go through the _y variant
  // (which un-mirrors the pitch bookkeeping); the x variant throws rather
  // than silently declaring a component-swapped interface.
  CellTable new_cells;
  InterfaceTable new_interfaces;
  EXPECT_THROW(
      make_compacted_library(result, {{"a", "a", 1, 1.0}}, new_cells, new_interfaces), Error);
  make_compacted_library_y(result, {{"a", "a", 1, 1.0}}, new_cells, new_interfaces);
  EXPECT_EQ(new_interfaces.get("a", "a", 1).vector, (Point{0, 32}));
  // And an x result refuses the _y variant.
  interfaces.declare("a", "a", 2, Interface{{20, 0}, Orientation::kNorth});
  const LeafResult x_result = compact_leaf_cells(cells, interfaces, {"a"}, {{"a", "a", 2, 1.0}},
                                                 CompactionRules::mosis());
  EXPECT_FALSE(x_result.y_axis);
  EXPECT_THROW(
      make_compacted_library_y(x_result, {{"a", "a", 2, 1.0}}, new_cells, new_interfaces),
      Error);
}

TEST(LeafXySchedule, LeafYCompactionValidation) {
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 4, 10));
  Cell& sunk = cells.create("sunk");
  sunk.add_box(Layer::kMetal1, Box(0, -5, 4, 5));
  interfaces.declare("a", "a", 1, Interface{{40, 0}, Orientation::kNorth});
  interfaces.declare("sunk", "sunk", 1, Interface{{0, 40}, Orientation::kNorth});
  // An x-only pitch cannot be y-compacted...
  EXPECT_THROW(compact_leaf_cells_y(cells, interfaces, {"a"}, {{"a", "a", 1, 1.0}},
                                    CompactionRules::mosis()),
               Error);
  // ...and boxes below local y = 0 violate the transposed gauge contract.
  EXPECT_THROW(compact_leaf_cells_y(cells, interfaces, {"sunk"}, {{"sunk", "sunk", 1, 1.0}},
                                    CompactionRules::mosis()),
               Error);
}

TEST(LeafXySchedule, ScheduleCompactsBothAxesToDrcCleanGrid) {
  // The leaf-aware x/y round end to end on the 2-D synthetic library:
  // every horizontal pitch and every vertical pitch must come back no
  // larger (most strictly smaller), the schedule must converge inside the
  // cap, and the compacted library must tile design-rule-clean as a grid —
  // the §6.3 promise, now on both axes.
  const SynthLeafLibrary lib = make_leaf_library_2d(5, 6, /*seed=*/3);
  LeafXyOptions options;
  const LeafXyResult result = compact_leaf_schedule(lib.cells, lib.interfaces, lib.cell_names,
                                                    lib.pitch_specs, CompactionRules::mosis(),
                                                    options);
  ASSERT_TRUE(result.converged);
  ASSERT_GE(result.rounds, 1);
  ASSERT_EQ(result.round_stats.size(), static_cast<std::size_t>(result.rounds));
  EXPECT_TRUE(result.round_stats.front().x_ran);
  EXPECT_TRUE(result.round_stats.front().y_ran);

  bool some_x_shrank = false;
  bool some_y_shrank = false;
  for (const PitchSpec& spec : lib.pitch_specs) {
    const Interface before = lib.interfaces.get(spec.cell_a, spec.cell_b, spec.interface_index);
    const Interface after =
        result.interfaces.get(spec.cell_a, spec.cell_b, spec.interface_index);
    if (before.vector.x > 0) {
      EXPECT_LE(after.vector.x, before.vector.x);
      some_x_shrank |= after.vector.x < before.vector.x;
    }
    if (before.vector.y > 0) {
      EXPECT_LE(after.vector.y, before.vector.y);
      some_y_shrank |= after.vector.y < before.vector.y;
    }
  }
  EXPECT_TRUE(some_x_shrank);
  EXPECT_TRUE(some_y_shrank);

  // Tile cell 0 as a 3x3 grid at its compacted self-pitches and DRC it.
  const std::string& name = lib.cell_names.front();
  const Interface hp = result.interfaces.get(name, name, 1);
  const Interface vp = result.interfaces.get(name, name, 2);
  const std::vector<LayerBox> cell_boxes = flatten_boxes(result.cells.get(name));
  std::vector<LayerBox> assembled;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (const LayerBox& lb : cell_boxes) {
        assembled.push_back(
            {lb.layer, lb.box.translated({i * hp.vector.x + j * vp.vector.x,
                                          i * hp.vector.y + j * vp.vector.y})});
      }
    }
  }
  EXPECT_TRUE(check_design_rules(assembled, DesignRules::mosis_lambda()).empty());
}

TEST(LeafXySchedule, ScheduleRunsOnTheDualEngineByDefault) {
  // The options knob's default is the kSparseDual engine; on the leaf
  // LPs it must never touch phase 1 or fall back, and every pivot it
  // reports must be a dual pivot.
  const SynthLeafLibrary lib = make_leaf_library_2d(4, 6, /*seed=*/9);
  const LeafXyResult result = compact_leaf_schedule(lib.cells, lib.interfaces, lib.cell_names,
                                                    lib.pitch_specs, CompactionRules::mosis());
  EXPECT_GT(result.lp_total.iterations, 0);
  EXPECT_EQ(result.lp_total.phase1_pivots, 0);
  EXPECT_EQ(result.lp_total.dual_fallbacks, 0);
  EXPECT_EQ(result.lp_total.dual_pivots, result.lp_total.iterations);
}

TEST(XySchedule, ConvergesOnGridField) {
  const SynthField field = make_grid_field(8, 8);
  XyScheduleOptions schedule;
  schedule.max_rounds = 8;
  const XyScheduleResult result = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, schedule, field.stretchable);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rounds, schedule.max_rounds);
  EXPECT_LT(result.width_after, result.width_before);
  EXPECT_LT(result.height_after, result.height_before);
}

TEST(XySchedule, ConvergedFixpointIsStable) {
  // Once a round leaves the geometry unchanged, every further round is a
  // no-op: running past convergence must reproduce the converged geometry
  // exactly.
  const SynthField field = make_random_field(99, 40);
  XyScheduleOptions to_convergence;
  to_convergence.max_rounds = 16;
  const XyScheduleResult converged = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, to_convergence, field.stretchable);
  ASSERT_TRUE(converged.converged);

  XyScheduleOptions overrun;
  overrun.max_rounds = converged.rounds + 3;
  overrun.stop_when_converged = false;
  const XyScheduleResult extra = compact_flat_schedule(
      field.boxes, CompactionRules::mosis(), {}, overrun, field.stretchable);
  EXPECT_EQ(converged.boxes, extra.boxes);
  EXPECT_EQ(converged.width_after, extra.width_after);
  EXPECT_EQ(converged.height_after, extra.height_after);
}

TEST(XySchedule, SecondRoundCanBeatSingleXyPass) {
  // The workload alternation exists for: the y pass can drop a box out of
  // a band, freeing a second x pass to reclaim width a single xy pass
  // leaves behind. Here A and B share a band (x pass holds B right of A),
  // a narrow blocker C pins A's height — so the y pass drops only B, and
  // the second x pass slides B over the gap beside C.
  const std::vector<LayerBox> boxes = {
      {Layer::kMetal1, Box(0, 10, 10, 14)},   // A
      {Layer::kMetal1, Box(16, 10, 26, 14)},  // B
      {Layer::kMetal1, Box(0, 0, 4, 4)},      // C (blocker under A)
  };
  const XyResult one = compact_flat_xy(boxes, CompactionRules::mosis());
  XyScheduleOptions schedule;
  schedule.max_rounds = 8;
  const XyScheduleResult many =
      compact_flat_schedule(boxes, CompactionRules::mosis(), {}, schedule);
  EXPECT_TRUE(many.converged);
  EXPECT_EQ(one.width_after, 26);
  EXPECT_EQ(many.width_after, 20);
  EXPECT_LE(many.height_after, one.height_after);
}

TEST(XySchedule, GeneratorRunsRequestedCompaction) {
  // The §6.4 compactor wired into the Figure 1.1 driver: a RAM-style row
  // design asks for post-generation compaction programmatically.
  constexpr const char* kSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
  constexpr const char* kDesign = R"(
(macro mrow (n)
  (locals foo)
  (do (i 1 (+ i 1) (> i n))
      (mk_instance b.i brick)
      (cond ((> i 1) (connect b.(- i 1) b.i 1)))))
(assign r (mrow n))
(mk_cell "row" (subcell r b.1))
)";
  Generator plain;
  const GeneratorResult loose = plain.run(kSample, kDesign, "n = 6");
  EXPECT_FALSE(loose.compacted);

  Generator compacting;
  CompactionRequest request;
  request.enabled = true;
  compacting.set_compaction(request);
  const GeneratorResult tight = compacting.run(kSample, kDesign, "n = 6");
  ASSERT_TRUE(tight.compacted);
  EXPECT_EQ(tight.top->name(), "row_compacted");
  // The sample leaves 20 units of slack per interface; the schedule closes
  // each gap to the metal1 spacing.
  EXPECT_EQ(tight.compaction.width_before, 5 * 40 + 20);
  EXPECT_EQ(tight.compaction.width_after, 6 * 20 + 5 * 6);
  EXPECT_TRUE(check_design_rules(flatten_boxes(*tight.top), DesignRules::mosis_lambda()).empty());
  EXPECT_NE(tight.output.find("row_compacted"), std::string::npos);
}

TEST(XySchedule, CompactDirectiveEnablesCompaction) {
  // `.compact:xy` in the parameter file requests the same through data.
  constexpr const char* kSample = R"(
cell brick
  box metal1 0 0 20 8
end
assembly
  inst a brick 0 0 N
  inst b brick 40 0 N
  label 1 from a to b
end
)";
  constexpr const char* kDesign = R"(
(mk_instance x brick)
(mk_instance y brick)
(connect x y 1)
(mk_cell "pair" x)
)";
  Generator generator;
  const GeneratorResult result = generator.run(kSample, kDesign, ".compact:xy\n");
  ASSERT_TRUE(result.compacted);
  EXPECT_LT(result.compaction.width_after, result.compaction.width_before);

  Generator misspelled;
  EXPECT_THROW(misspelled.run(kSample, kDesign, ".compact:x\n"), Error);
}

TEST(XySchedule, GeneratedPlaCompactsBestEffort) {
  // The PLA generator output (E10) through the same hook. Its sample cells
  // sit closer than the MOSIS table allows in x (rigid overlaps make that
  // axis's constraint system infeasible), so the best-effort schedule must
  // skip x, still compact y, and record the skip.
  pla::TruthTable table = pla::TruthTable::parse(
      "10 10\n"
      "01 11\n"
      "-1 01\n");
  Generator generator;
  CompactionRequest request;
  request.enabled = true;
  generator.set_compaction(request);
  const GeneratorResult result = pla::generate_pla(generator, table);
  ASSERT_TRUE(result.compacted);
  EXPECT_TRUE(result.compaction.converged);
  EXPECT_TRUE(result.compaction.x_infeasible);
  EXPECT_LT(result.compaction.height_after, result.compaction.height_before);
  EXPECT_LE(result.compaction.width_after, result.compaction.width_before);
  EXPECT_FALSE(flatten_boxes(*result.top).empty());
}

}  // namespace
}  // namespace rsg::compact
