// Property sweeps over randomized connectivity graphs (Ch. 3): for any
// sample interface set and any spanning tree over it, the expanded layout
// is a well-defined equivalence class — independent of the traversal root,
// the edge insertion order, and redundant consistent edges.
#include <gtest/gtest.h>

#include <random>

#include "graph/connectivity_graph.hpp"
#include "graph/expand.hpp"
#include "io/def_writer.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

struct RandomCase {
  std::uint32_t seed;
};

class GraphPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // A deterministic random scenario per seed: 3 cell types with asymmetric
  // geometry, a family of random interfaces, a random tree over ~20 nodes.
  void build(std::uint32_t seed) {
    rng_.seed(seed);
    for (const char* name : {"pa", "pb", "pc"}) {
      Cell& cell = cells_.create(name);
      cell.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
      cell.add_box(Layer::kPoly, Box(0, 0, 3, 9));
    }
    const char* names[3] = {"pa", "pb", "pc"};
    for (int a = 0; a < 3; ++a) {
      for (int b = a; b < 3; ++b) {
        for (int index = 1; index <= 2; ++index) {
          interfaces_.declare(names[a], names[b], index, random_interface());
        }
      }
    }
  }

  Interface random_interface() {
    std::uniform_int_distribution<Coord> offset(-30, 30);
    std::uniform_int_distribution<int> orient(0, 7);
    return Interface{{offset(rng_), offset(rng_)}, Orientation::from_index(orient(rng_))};
  }

  struct TreeSpec {
    std::vector<int> parent;      // parent[i] for i >= 1
    std::vector<int> cell_of;     // 0..2
    std::vector<int> index_of;    // interface index per edge
    std::vector<bool> flipped;    // edge direction: child->parent instead
  };

  TreeSpec random_tree(int n) {
    TreeSpec spec;
    std::uniform_int_distribution<int> cell(0, 2);
    std::uniform_int_distribution<int> index(1, 2);
    std::uniform_int_distribution<int> coin(0, 1);
    spec.cell_of.push_back(cell(rng_));
    for (int i = 1; i < n; ++i) {
      std::uniform_int_distribution<int> parent(0, i - 1);
      spec.parent.push_back(parent(rng_));
      spec.cell_of.push_back(cell(rng_));
      spec.index_of.push_back(index(rng_));
      spec.flipped.push_back(coin(rng_) == 1);
    }
    return spec;
  }

  // Expands the tree rooted at `root_node`, with edges inserted in the
  // given order permutation; returns the isometry-invariant signature:
  // interfaces from node 0 to every other node.
  std::vector<Interface> expand_signature(const TreeSpec& spec, int root_node,
                                          bool reverse_edge_insertion) {
    ConnectivityGraph graph;
    const char* names[3] = {"pa", "pb", "pc"};
    std::vector<GraphNode*> nodes;
    for (const int c : spec.cell_of) nodes.push_back(graph.make_instance(&cells_.get(names[c])));

    std::vector<int> order(spec.parent.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    if (reverse_edge_insertion) std::reverse(order.begin(), order.end());
    for (const int e : order) {
      GraphNode* parent = nodes[static_cast<std::size_t>(spec.parent[static_cast<std::size_t>(e)])];
      GraphNode* child = nodes[static_cast<std::size_t>(e) + 1];
      if (spec.flipped[static_cast<std::size_t>(e)]) {
        graph.connect(child, parent, spec.index_of[static_cast<std::size_t>(e)]);
      } else {
        graph.connect(parent, child, spec.index_of[static_cast<std::size_t>(e)]);
      }
    }
    expand_to_cell(graph, nodes[static_cast<std::size_t>(root_node)],
                   "sig" + std::to_string(++counter_), interfaces_, cells_);
    std::vector<Interface> signature;
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      signature.push_back(Interface::from_placements(*nodes[0]->placement, *nodes[i]->placement));
    }
    return signature;
  }

  std::mt19937 rng_;
  CellTable cells_;
  InterfaceTable interfaces_;
  int counter_ = 0;
};

TEST_P(GraphPropertyTest, LayoutIsInvariantUnderRootAndInsertionOrder) {
  build(static_cast<std::uint32_t>(GetParam()));
  const TreeSpec spec = random_tree(20);
  const auto reference = expand_signature(spec, 0, false);
  // Any root, any insertion order: identical relative geometry.
  EXPECT_EQ(expand_signature(spec, 19, false), reference);
  EXPECT_EQ(expand_signature(spec, 7, true), reference);
  EXPECT_EQ(expand_signature(spec, 0, true), reference);
}

TEST_P(GraphPropertyTest, RedundantConsistentEdgeChangesNothing) {
  build(static_cast<std::uint32_t>(GetParam()) + 1000);
  const TreeSpec spec = random_tree(12);
  const auto reference = expand_signature(spec, 0, false);

  // Re-build the same tree, then add a redundant edge whose interface is
  // DERIVED from the already-expanded placements (hence consistent), and
  // expand a fresh copy containing that extra edge.
  ConnectivityGraph graph;
  const char* names[3] = {"pa", "pb", "pc"};
  std::vector<GraphNode*> nodes;
  for (const int c : spec.cell_of) nodes.push_back(graph.make_instance(&cells_.get(names[c])));
  for (std::size_t e = 0; e < spec.parent.size(); ++e) {
    GraphNode* parent = nodes[static_cast<std::size_t>(spec.parent[e])];
    GraphNode* child = nodes[e + 1];
    if (spec.flipped[e]) {
      graph.connect(child, parent, spec.index_of[e]);
    } else {
      graph.connect(parent, child, spec.index_of[e]);
    }
  }
  // Derive a brand-new interface between nodes 0 and 5 from the reference
  // expansion and register it as index 9.
  interfaces_.declare(nodes[0]->cell->name(), nodes[5]->cell->name(), 9, reference[4]);
  graph.connect(nodes[0], nodes[5], 9);

  ExpandStats stats;
  expand_to_cell(graph, nodes[3], "redundant", interfaces_, cells_, &stats);
  EXPECT_GT(stats.redundant_edges_checked, 0u);
  std::vector<Interface> signature;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    signature.push_back(Interface::from_placements(*nodes[0]->placement, *nodes[i]->placement));
  }
  EXPECT_EQ(signature, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace rsg
