// Tests for the §2.6 orientation algebra: the Figure 2.5 coordinate-mapping
// table, and property sweeps checking the compact (j,k) representation is an
// exact homomorphic image of 2x2 integer matrix algebra.
#include "geom/orientation.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rsg {
namespace {

TEST(Orientation, Figure25CoordinateMapping) {
  // Figure 2.5: orientation | x coordinate | y coordinate
  //   North  x   y
  //   South -x  -y
  //   East   y  -x
  //   West  -y   x
  const Vec v{3, 7};
  EXPECT_EQ(Orientation::kNorth.apply(v), (Vec{3, 7}));
  EXPECT_EQ(Orientation::kSouth.apply(v), (Vec{-3, -7}));
  EXPECT_EQ(Orientation::kEast.apply(v), (Vec{7, -3}));
  EXPECT_EQ(Orientation::kWest.apply(v), (Vec{-7, 3}));
}

TEST(Orientation, MirrorReflectsBeforeRotating) {
  // (j,k) means e^{ij}∘R^k: reflect about the y axis FIRST (§2.6).
  const Vec v{3, 7};
  EXPECT_EQ(Orientation::kMirrorNorth.apply(v), (Vec{-3, 7}));
  // MW: reflect -> (-3,7), then rotate CCW quarter turn -> (-7,-3).
  EXPECT_EQ(Orientation::kMirrorWest.apply(v), (Vec{-7, -3}));
  EXPECT_EQ(Orientation::kMirrorSouth.apply(v), (Vec{3, -7}));
  EXPECT_EQ(Orientation::kMirrorEast.apply(v), (Vec{7, 3}));
}

TEST(Orientation, NamesRoundTrip) {
  for (const Orientation o : Orientation::all()) {
    EXPECT_EQ(Orientation::parse(o.name()), o) << o.name();
  }
  EXPECT_THROW(Orientation::parse("NE"), Error);
  EXPECT_THROW(Orientation::parse(""), Error);
}

TEST(Orientation, IndexRoundTrip) {
  for (const Orientation o : Orientation::all()) {
    EXPECT_EQ(Orientation::from_index(o.index()), o);
  }
  EXPECT_THROW(Orientation::from_index(8), Error);
  EXPECT_THROW(Orientation::from_index(-1), Error);
}

TEST(Orientation, SouthIsItsOwnInverse) {
  // §2.2's worked example relies on South^-1 = South (180° = -180°).
  EXPECT_EQ(Orientation::kSouth.inverse(), Orientation::kSouth);
}

TEST(Orientation, ReflectionsAreInvolutions) {
  // §2.6.1: if k = 1 the orientation is a reflection, hence O∘O = I and
  // O^-1 = O.
  for (const Orientation o : Orientation::all()) {
    if (o.is_rotation()) continue;
    EXPECT_EQ(o.inverse(), o) << o.name();
    EXPECT_EQ(o.compose(o), Orientation::kNorth) << o.name();
  }
}

// --- Property sweep over all 64 ordered pairs -------------------------------

class OrientationPairTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Orientation a() const { return Orientation::from_index(std::get<0>(GetParam())); }
  Orientation b() const { return Orientation::from_index(std::get<1>(GetParam())); }
};

TEST_P(OrientationPairTest, CompositionMatchesMatrixProduct) {
  const Orientation::Matrix ma = a().matrix();
  const Orientation::Matrix mb = b().matrix();
  // (a∘b) acts as a(b(v)) so its matrix is Ma * Mb.
  const Orientation::Matrix product{
      ma.a * mb.a + ma.c * mb.b, ma.b * mb.a + ma.d * mb.b,
      ma.a * mb.c + ma.c * mb.d, ma.b * mb.c + ma.d * mb.d};
  EXPECT_EQ(a().compose(b()).matrix(), product) << a().name() << " ∘ " << b().name();
}

TEST_P(OrientationPairTest, CompositionMatchesPointwiseApplication) {
  const Vec vs[] = {{1, 0}, {0, 1}, {5, -3}, {-11, 13}};
  for (const Vec v : vs) {
    EXPECT_EQ(a().compose(b()).apply(v), a().apply(b().apply(v)));
  }
}

TEST_P(OrientationPairTest, InverseOfCompositionIsReversedComposition) {
  EXPECT_EQ(a().compose(b()).inverse(), b().inverse().compose(a().inverse()));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, OrientationPairTest,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8)));

// --- Per-element properties -------------------------------------------------

class OrientationElementTest : public ::testing::TestWithParam<int> {
 protected:
  Orientation o() const { return Orientation::from_index(GetParam()); }
};

TEST_P(OrientationElementTest, InverseComposesToIdentity) {
  EXPECT_EQ(o().compose(o().inverse()), Orientation::kNorth);
  EXPECT_EQ(o().inverse().compose(o()), Orientation::kNorth);
}

TEST_P(OrientationElementTest, IdentityIsNeutral) {
  EXPECT_EQ(o().compose(Orientation::kNorth), o());
  EXPECT_EQ(Orientation::kNorth.compose(o()), o());
}

TEST_P(OrientationElementTest, ApplyPreservesAxisAlignment) {
  // The eight orientations map unit axis vectors onto unit axis vectors —
  // the defining property that makes boxes stay boxes (§2.6).
  for (const Vec axis : {Vec{1, 0}, Vec{0, 1}}) {
    const Vec image = o().apply(axis);
    EXPECT_EQ(std::abs(image.x) + std::abs(image.y), 1);
  }
}

TEST_P(OrientationElementTest, MatrixDeterminantMatchesMirrorFlag) {
  const Orientation::Matrix m = o().matrix();
  const int det = m.a * m.d - m.b * m.c;
  EXPECT_EQ(det, o().mirrored() ? -1 : 1);
}

TEST_P(OrientationElementTest, FourthPowerOfRotationsIsIdentity) {
  if (!o().is_rotation()) return;
  EXPECT_EQ(o().compose(o()).compose(o()).compose(o()), Orientation::kNorth);
}

INSTANTIATE_TEST_SUITE_P(AllElements, OrientationElementTest, ::testing::Range(0, 8));

TEST(Orientation, GroupIsClosedAndHasUniqueInverses) {
  // Cayley-table closure: all 64 products land in the 8-element set, and
  // every element has exactly one inverse.
  for (const Orientation a : Orientation::all()) {
    int identity_count = 0;
    for (const Orientation b : Orientation::all()) {
      const Orientation c = a.compose(b);
      EXPECT_GE(c.index(), 0);
      EXPECT_LT(c.index(), 8);
      if (c == Orientation::kNorth) ++identity_count;
    }
    EXPECT_EQ(identity_count, 1) << a.name();
  }
}

}  // namespace
}  // namespace rsg
