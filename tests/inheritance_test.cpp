// Tests for interface inheritance (§2.5): the constructive implementation
// must satisfy the closed-form equations 2.11/2.12 and the defining
// geometric property of Figure 2.4.
#include "iface/inheritance.hpp"

#include <gtest/gtest.h>

namespace rsg {
namespace {

// Direct transcription of eq 2.11 / 2.12:
//   O_cd = O_a^c ∘ O_ab ∘ (O_b^d)^-1
//   V_cd = O_a^c V_ab - O_cd L_b^d + L_a^c
Interface inheritance_closed_form(const Placement& a_in_c, const Placement& b_in_d,
                                  const Interface& i_ab) {
  const Orientation o_cd =
      a_in_c.orientation.compose(i_ab.orientation).compose(b_in_d.orientation.inverse());
  const Vec v_cd = a_in_c.orientation.apply(i_ab.vector) - o_cd.apply(b_in_d.location) +
                   a_in_c.location;
  return Interface{v_cd, o_cd};
}

TEST(Inheritance, SimpleTranslationOnlyCase) {
  // A at (2,3) in C, B at (5,1) in D, subcell interface pure translation.
  const Placement a_in_c{{2, 3}, Orientation::kNorth};
  const Placement b_in_d{{5, 1}, Orientation::kNorth};
  const Interface i_ab{{10, 0}, Orientation::kNorth};
  const Interface i_cd = inherit_interface(a_in_c, b_in_d, i_ab);
  // B lands at (2,3)+(10,0) = (12,3); D's origin must sit at (12,3)-(5,1).
  EXPECT_EQ(i_cd.vector, (Vec{7, 2}));
  EXPECT_EQ(i_cd.orientation, Orientation::kNorth);
}

TEST(Inheritance, DefiningProperty) {
  // Placing C and D with the inherited I_cd must place the inner A and B
  // with exactly the original I_ab — that is Figure 2.4's statement.
  const Placement a_in_c{{6, -2}, Orientation::kEast};
  const Placement b_in_d{{-3, 9}, Orientation::kMirrorNorth};
  const Interface i_ab{{15, 4}, Orientation::kWest};

  const Interface i_cd = inherit_interface(a_in_c, b_in_d, i_ab);

  const Placement c_abs{{100, 200}, Orientation::kMirrorEast};  // arbitrary
  const Placement d_abs = i_cd.place_other(c_abs);
  const Placement a_abs = c_abs.compose(a_in_c);
  const Placement b_abs = d_abs.compose(b_in_d);
  EXPECT_EQ(Interface::from_placements(a_abs, b_abs), i_ab);
}

class InheritancePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  Placement a_in_c() const {
    return {{7, 3}, Orientation::from_index(std::get<0>(GetParam()))};
  }
  Placement b_in_d() const {
    return {{-4, 11}, Orientation::from_index(std::get<1>(GetParam()))};
  }
  Interface i_ab() const {
    return {{23, -9}, Orientation::from_index(std::get<2>(GetParam()))};
  }
};

TEST_P(InheritancePropertyTest, ConstructiveMatchesClosedForm) {
  EXPECT_EQ(inherit_interface(a_in_c(), b_in_d(), i_ab()),
            inheritance_closed_form(a_in_c(), b_in_d(), i_ab()));
}

TEST_P(InheritancePropertyTest, DefiningPropertyHoldsForAllOrientations) {
  const Interface i_cd = inherit_interface(a_in_c(), b_in_d(), i_ab());
  const Placement c_abs{{-31, 17}, Orientation::kSouth};
  const Placement d_abs = i_cd.place_other(c_abs);
  EXPECT_EQ(Interface::from_placements(c_abs.compose(a_in_c()), d_abs.compose(b_in_d())),
            i_ab());
}

INSTANTIATE_TEST_SUITE_P(OrientationSweep, InheritancePropertyTest,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 8),
                                            ::testing::Range(0, 8)));

TEST(Inheritance, IdentitySubcellPlacementsGiveBackOriginal) {
  // When A sits at C's origin and B at D's origin, C/D inherit I_ab itself.
  const Interface i_ab{{40, 8}, Orientation::kMirrorWest};
  EXPECT_EQ(inherit_interface(kIdentityPlacement, kIdentityPlacement, i_ab), i_ab);
}

}  // namespace
}  // namespace rsg
