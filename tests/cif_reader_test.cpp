// Tests for the CIF reader: round trips through the writer, transform
// reconstruction, scale handling, error paths, and CIF-as-sample-layout
// (the §4.5 format-independence claim).
#include "io/cif_reader.hpp"

#include <gtest/gtest.h>

#include "io/cif_writer.hpp"
#include "io/def_writer.hpp"
#include "lang/parser.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

class CifRoundTripTest : public ::testing::Test {
 protected:
  CifRoundTripTest() {
    Cell& leaf = cells_.create("leaf");
    leaf.add_box(Layer::kMetal1, Box(0, 0, 5, 3));  // odd sizes: exercise scale
    leaf.add_box(Layer::kPoly, Box(1, -2, 3, 7));
    leaf.add_label("pin", {1, 1});
    Cell& mid = cells_.create("mid");
    mid.add_instance(&leaf, Placement{{10, 0}, Orientation::kWest});
    mid.add_instance(&leaf, Placement{{-4, 9}, Orientation::kMirrorEast});
    Cell& top = cells_.create("top");
    top.add_box(Layer::kDiffusion, Box(-7, -7, 0, 0));
    top.add_instance(&mid, Placement{{100, 50}, Orientation::kSouth});
    top.add_instance(&leaf, Placement{{0, 0}, Orientation::kMirrorNorth});
  }
  CellTable cells_;
};

TEST_F(CifRoundTripTest, WriteReadPreservesFlatGeometry) {
  const std::string cif = cif_to_string(cells_.get("top"));
  CellTable read_back;
  const CifReadResult result = read_cif(cif, read_back);
  EXPECT_EQ(result.top, "top");
  EXPECT_EQ(result.cells_read, 3u);
  // The flat geometry must be identical box for box.
  EXPECT_EQ(def_to_string(read_back.get("top")), def_to_string(cells_.get("top")));
}

TEST_F(CifRoundTripTest, AllOrientationsSurviveTheRoundTrip) {
  CellTable cells;
  Cell& leaf = cells.create("leaf");
  leaf.add_box(Layer::kMetal1, Box(0, 0, 10, 3));
  leaf.add_box(Layer::kPoly, Box(2, 0, 4, 8));
  Cell& top = cells.create("top");
  for (int i = 0; i < 8; ++i) {
    top.add_instance(&leaf, Placement{{i * 40, 7}, Orientation::from_index(i)});
  }
  CellTable read_back;
  read_cif(cif_to_string(top), read_back);
  EXPECT_EQ(def_to_string(read_back.get("top")), def_to_string(top));
}

TEST(CifReader, HandWrittenCif) {
  const char* cif = R"(
( a hand-written fragment );
DS 1 2 1;
9 wire;
L CM1; B 4 2 2 1;
DF;
DS 2 1 1;
9 pairs;
C 1 T 0 0;
C 1 R 0 1 T 20 0;
C 1 MX T 40 0;
DF;
C 2 T 0 0;
E
)";
  CellTable cells;
  const CifReadResult result = read_cif(cif, cells);
  EXPECT_EQ(result.top, "pairs");
  EXPECT_EQ(result.boxes_read, 1u);
  EXPECT_EQ(result.calls_read, 4u);
  // DS 1 has scale 2/1: the 4x2 box at center (2,1) doubles to 8x4 @ (4,2).
  const Cell& wire = cells.get("wire");
  ASSERT_EQ(wire.boxes().size(), 1u);
  EXPECT_EQ(wire.boxes()[0].box, Box(0, 0, 8, 4));
  const Cell& pairs = cells.get("pairs");
  ASSERT_EQ(pairs.instances().size(), 3u);
  EXPECT_EQ(pairs.instances()[1].placement.orientation, Orientation::kWest);
  EXPECT_EQ(pairs.instances()[2].placement.orientation, Orientation::kMirrorNorth);
}

TEST(CifReader, ErrorPaths) {
  CellTable cells;
  EXPECT_THROW(read_cif("DS 1 1 1;\nB 2 2 1 1;", cells), Error);  // missing DF
  CellTable cells2;
  EXPECT_THROW(read_cif("DS 1;\nDS 2;", cells2), Error);  // nested DS
  CellTable cells3;
  EXPECT_THROW(read_cif("DS 1 1 1;\nC 99 T 0 0;\nDF;\nE", cells3), Error);  // fwd ref
  CellTable cells4;
  EXPECT_THROW(read_cif("DS 1 1 1;\nL CZ;\nDF;\nE", cells4), Error);  // bad layer
  CellTable cells5;
  EXPECT_THROW(read_cif("DS 1 1 1;\nL CM1;\nB 3 2 1 1 1 1;\nDF;\nE", cells5),
               Error);  // diagonal box direction
  CellTable cells6;
  EXPECT_THROW(read_cif("DS 1 1 3;\nL CM1;\nB 4 4 2 2;\nDF;\nE", cells6),
               Error);  // non-integral scale result
}

TEST(CifReader, CifSampleLayoutDrivesTheGenerator) {
  // The §4.5 claim: a different file format, the same pipeline. Express the
  // quickstart sample as CIF (assembly cell carries the 94 labels), load
  // it, and run a design file against it.
  const char* cif_sample = R"(
DS 1 1 1;
9 brick;
L CM1; B 20 8 10 4;
DF;
DS 2 1 1;
9 assembly1;
C 1 T 0 0;
C 1 T 16 0;
94 1 18 4;
DF;
E
)";
  Generator generator;
  const SampleLayoutStats stats =
      load_sample_layout_cif(cif_sample, generator.cells(), generator.interfaces());
  EXPECT_EQ(stats.cells, 1u);
  EXPECT_EQ(stats.interfaces_declared, 1u);
  EXPECT_EQ(generator.interfaces().get("brick", "brick", 1),
            (Interface{{16, 0}, Orientation::kNorth}));

  // Drive the language directly against the loaded tables.
  lang::Interpreter interp(generator.cells(), generator.interfaces(), generator.graph());
  const lang::Value cell = interp.run(lang::parse_program(
      "(mk_instance a brick) (mk_instance b brick) (connect a b 1)"
      "(mk_cell \"row\" a)"));
  ASSERT_TRUE(cell.is_cell());
  EXPECT_EQ(cell.as_cell()->instances().size(), 2u);
  EXPECT_EQ(cell.as_cell()->instances()[1].placement.location, (Point{16, 0}));
}

}  // namespace
}  // namespace rsg
