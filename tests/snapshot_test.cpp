// Tests for the RSGB binary snapshot format (src/io/snapshot.{hpp,cpp}).
//
// The layout under test in WorkedExample is the exact two-cell table from
// the worked example in docs/formats/RSGB.md §8; the field-by-field
// assertions cite the spec's section numbers. If one of those assertions
// fails, either the writer or the spec is wrong — fix whichever drifted,
// never the test.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "io/cif_writer.hpp"
#include "io/snapshot.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

std::string snapshot_bytes(const CellTable& cells, const std::string& root) {
  std::ostringstream out(std::ios::binary);
  write_snapshot(out, cells, root);
  return out.str();
}

template <typename T>
T read_at(const std::string& bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void poke(std::string& bytes, std::size_t offset, T value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
}

// Re-seals the header after a deliberate header edit (RSGB.md §3: the
// header CRC at offset 60 covers bytes [0, 60)).
void reseal_header(std::string& bytes) {
  poke<std::uint32_t>(bytes, 60, snapshot_crc32(bytes.data(), 60));
}

// The docs/formats/RSGB.md §8 worked example: cell "unit" holding one
// metal1 box, cell "top" holding one label and one named instance of unit.
CellTable worked_example() {
  CellTable cells;
  Cell& unit = cells.create("unit");
  unit.add_box(Layer::kMetal1, Box(0, 0, 4, 2));
  Cell& top = cells.create("top");
  top.add_label("a", {1, 2});
  top.add_instance(&unit, Placement{{10, 0}, Orientation::kNorth}, "u0");
  return cells;
}

TEST(SnapshotFormat, WorkedExampleFieldByField) {
  const std::string bytes = snapshot_bytes(worked_example(), "top");

  // §3 header: magic, version 1.0, 64 header bytes, 5 sections, the file
  // size the layout in §8 derives (224 + 80 + 40 + 24 + 32 + 15 = 415),
  // table at 64, root = cell index 1 ("top").
  ASSERT_EQ(bytes.size(), 415u);
  EXPECT_EQ(std::memcmp(bytes.data(), "RSGB", 4), 0);
  EXPECT_EQ(read_at<std::uint16_t>(bytes, 4), 1u);   // version_major
  EXPECT_EQ(read_at<std::uint16_t>(bytes, 6), 0u);   // version_minor
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 8), 64u);  // header_bytes
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 12), 5u);  // section_count
  EXPECT_EQ(read_at<std::uint64_t>(bytes, 16), 415u);  // file_bytes
  EXPECT_EQ(read_at<std::uint64_t>(bytes, 24), 64u);   // section_table_offset
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 32), 1u);    // root_cell_index
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 36), 0u);    // flags
  // §3: header CRC-32 over bytes [0, 60), section-table CRC over the table.
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 60), snapshot_crc32(bytes.data(), 60));
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 40), snapshot_crc32(bytes.data() + 64, 5 * 32));

  // §4 section table: five 32-byte entries at offset 64, in the fixed
  // writer order CELL, BOXS, LABL, INST, STRT, payloads 8-aligned.
  struct Expected {
    const char* fourcc;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t count;
  };
  const Expected expected[5] = {
      {"CELL", 224, 80, 2}, {"BOXS", 304, 40, 1}, {"LABL", 344, 24, 1},
      {"INST", 368, 32, 1}, {"STRT", 400, 15, 15},
  };
  for (int i = 0; i < 5; ++i) {
    const std::size_t entry = 64 + 32 * static_cast<std::size_t>(i);
    EXPECT_EQ(std::memcmp(bytes.data() + entry, expected[i].fourcc, 4), 0) << i;
    EXPECT_EQ(read_at<std::uint32_t>(bytes, entry + 4), 0u) << i;  // reserved
    EXPECT_EQ(read_at<std::uint64_t>(bytes, entry + 8), expected[i].offset) << i;
    EXPECT_EQ(read_at<std::uint64_t>(bytes, entry + 16), expected[i].size) << i;
    EXPECT_EQ(read_at<std::uint32_t>(bytes, entry + 24), expected[i].count) << i;
    EXPECT_EQ(read_at<std::uint32_t>(bytes, entry + 28),
              snapshot_crc32(bytes.data() + expected[i].offset, expected[i].size))
        << i;
  }

  // §5.1 cell records (40-byte stride): "unit" then "top" in creation
  // order, name offsets into STRT, record spans into the geometry sections.
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 224 + 0), 1u);   // name_offset "unit"
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 224 + 4), 1u);   // box_count
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 224 + 8), 0u);   // label_count
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 224 + 12), 0u);  // instance_count
  EXPECT_EQ(read_at<std::uint64_t>(bytes, 224 + 16), 0u);  // first_box
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 264 + 0), 6u);   // name_offset "top"
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 264 + 8), 1u);   // label_count
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 264 + 12), 1u);  // instance_count

  // §5.2 box record: corners then layer (metal1 = 2 in the Layer enum).
  EXPECT_EQ(read_at<std::int64_t>(bytes, 304 + 0), 0);   // lo_x
  EXPECT_EQ(read_at<std::int64_t>(bytes, 304 + 8), 0);   // lo_y
  EXPECT_EQ(read_at<std::int64_t>(bytes, 304 + 16), 4);  // hi_x
  EXPECT_EQ(read_at<std::int64_t>(bytes, 304 + 24), 2);  // hi_y
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 304 + 32), 2u);  // layer

  // §5.3 label record: text offset, position.
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 344 + 0), 10u);  // "a"
  EXPECT_EQ(read_at<std::int64_t>(bytes, 344 + 8), 1);
  EXPECT_EQ(read_at<std::int64_t>(bytes, 344 + 16), 2);

  // §5.4 instance record: callee index, name, location, orientation.
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 368 + 0), 0u);   // cell_index "unit"
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 368 + 4), 12u);  // "u0"
  EXPECT_EQ(read_at<std::int64_t>(bytes, 368 + 8), 10);
  EXPECT_EQ(read_at<std::int64_t>(bytes, 368 + 16), 0);
  EXPECT_EQ(read_at<std::uint32_t>(bytes, 368 + 24), 0u);  // kNorth

  // §6 string table: leading NUL, then interned NUL-terminated strings.
  EXPECT_EQ(std::memcmp(bytes.data() + 400, "\0unit\0top\0a\0u0\0", 15), 0);
}

TEST(SnapshotFormat, RoundTripIsByteIdenticalAndDeterministic) {
  const CellTable original = worked_example();
  const std::string bytes = snapshot_bytes(original, "top");
  EXPECT_EQ(bytes, snapshot_bytes(original, "top"));  // deterministic

  const Snapshot snapshot = Snapshot::from_buffer(bytes.data(), bytes.size());
  CellTable reloaded;
  const SnapshotReadResult result = load_snapshot(snapshot.view(), reloaded);
  EXPECT_EQ(result.root, "top");
  EXPECT_EQ(result.cells, 2u);
  EXPECT_EQ(result.boxes, 1u);
  EXPECT_EQ(result.labels, 1u);
  EXPECT_EQ(result.instances, 1u);
  EXPECT_EQ(reloaded.get("top").instances()[0].name, "u0");

  // write(load(write(x))) == write(x): the snapshot is a fixed point.
  EXPECT_EQ(snapshot_bytes(reloaded, result.root), bytes);
  // And the reloaded layout is the same layout.
  EXPECT_EQ(cif_to_string(reloaded.get("top")), cif_to_string(original.get("top")));
}

TEST(SnapshotFormat, MmapFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "rsgb_mmap_test.rsgb";
  const CellTable original = worked_example();
  write_snapshot_file(path, original, "top");

  const Snapshot snapshot = Snapshot::map_file(path);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(snapshot.mapped());  // the zero-copy path, not a buffered read
#endif
  CellTable reloaded;
  EXPECT_EQ(load_snapshot(snapshot.view(), reloaded).root, "top");
  EXPECT_EQ(cif_to_string(reloaded.get("top")), cif_to_string(original.get("top")));

  CellTable reloaded2;
  EXPECT_EQ(read_snapshot_file(path, reloaded2).cells, 2u);
  std::remove(path.c_str());
}

TEST(SnapshotFormat, RejectsCorruption) {
  const std::string good = snapshot_bytes(worked_example(), "top");

  {  // §3: wrong magic
    std::string bad = good;
    bad[0] = 'X';
    EXPECT_THROW(Snapshot::from_buffer(bad.data(), bad.size()), Error);
  }
  {  // §3: any header edit without resealing trips the header CRC
    std::string bad = good;
    poke<std::uint32_t>(bad, 36, 1);  // flags
    EXPECT_THROW(Snapshot::from_buffer(bad.data(), bad.size()), Error);
  }
  {  // §4: a flipped section-table byte trips the table CRC
    std::string bad = good;
    bad[64 + 8] ^= 0x01;
    EXPECT_THROW(Snapshot::from_buffer(bad.data(), bad.size()), Error);
  }
  {  // §5.2: a flipped payload byte trips that section's CRC
    std::string bad = good;
    bad[304] ^= 0x01;  // box lo_x
    try {
      Snapshot::from_buffer(bad.data(), bad.size());
      FAIL() << "corrupted BOXS payload was accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("BOXS"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
    }
  }
}

TEST(SnapshotFormat, RejectsTruncation) {
  const std::string good = snapshot_bytes(worked_example(), "top");
  // Any prefix shorter than the declared file_bytes must be rejected —
  // either as too-small, or as truncated against the §3 size field.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{32}, std::size_t{64},
                                 std::size_t{224}, good.size() - 1}) {
    EXPECT_THROW(Snapshot::from_buffer(good.data(), keep), Error) << keep;
  }
}

TEST(SnapshotFormat, VersionSkew) {
  const std::string good = snapshot_bytes(worked_example(), "top");

  {  // §2: a different major version is rejected even with valid CRCs
    std::string skewed = good;
    poke<std::uint16_t>(skewed, 4, 2);
    reseal_header(skewed);
    try {
      Snapshot::from_buffer(skewed.data(), skewed.size());
      FAIL() << "major version skew was accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("major version"), std::string::npos);
    }
  }
  {  // §2: a newer minor version is additive and loads fine
    std::string skewed = good;
    poke<std::uint16_t>(skewed, 6, 99);
    reseal_header(skewed);
    const Snapshot snapshot = Snapshot::from_buffer(skewed.data(), skewed.size());
    EXPECT_EQ(snapshot.view().version_minor(), 99u);
    CellTable reloaded;
    EXPECT_EQ(load_snapshot(snapshot.view(), reloaded).cells, 2u);
  }
  {  // §2/§4: an unknown section FourCC is skipped, not an error
    std::string skewed = good;
    std::memcpy(skewed.data() + 64 + 4 * 32, "ZZZZ", 4);  // retype STRT
    poke<std::uint32_t>(skewed, 40, snapshot_crc32(skewed.data() + 64, 5 * 32));
    reseal_header(skewed);
    const Snapshot snapshot = Snapshot::from_buffer(skewed.data(), skewed.size());
    // With no string table, name lookups must fail cleanly, not crash.
    CellTable reloaded;
    EXPECT_THROW(load_snapshot(snapshot.view(), reloaded), Error);
  }
}

TEST(SnapshotFormat, WriterInputValidation) {
  CellTable cells;
  cells.create("only");
  std::ostringstream out(std::ios::binary);
  EXPECT_THROW(write_snapshot(out, cells, "missing_root"), Error);

  // An empty table with no root is a valid (if boring) snapshot.
  CellTable empty;
  const std::string bytes = snapshot_bytes(empty, "");
  const Snapshot snapshot = Snapshot::from_buffer(bytes.data(), bytes.size());
  EXPECT_EQ(snapshot.view().root_cell_index(), kSnapshotNoRootCell);
  CellTable reloaded;
  EXPECT_EQ(load_snapshot(snapshot.view(), reloaded).cells, 0u);
}

}  // namespace
}  // namespace rsg
