// Tests for leaf-cell compaction (§6.1–§6.3, Figure 6.3): variable folding,
// identical instance geometry, pitch optimization, the cost-function
// tradeoff of Figure 6.2, and library reconstruction.
#include "compact/leaf_compactor.hpp"

#include <gtest/gtest.h>

#include "compact/flat_compactor.hpp"
#include "support/error.hpp"

namespace rsg::compact {
namespace {

class LeafTest : public ::testing::Test {
 protected:
  LeafTest() {
    // A sparse cell: two rigid metal bars with slack between them.
    Cell& a = cells_.create("a");
    a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
    a.add_box(Layer::kMetal1, Box(30, 0, 40, 4));
    interfaces_.declare("a", "a", 1, Interface{{60, 0}, Orientation::kNorth});
  }

  CellTable cells_;
  InterfaceTable interfaces_;
};

TEST_F(LeafTest, Figure63VariableFolding) {
  // One cell with 2 boxes = 4 edge unknowns; the two-instance pair layout
  // would need 8. Folded: 4 + one pitch = 5 — the exact counts of Fig 6.3.
  const LeafResult result = compact_leaf_cells(cells_, interfaces_, {"a"},
                                               {{"a", "a", 1, 1.0}}, CompactionRules::mosis());
  EXPECT_EQ(result.variable_count, 5u);
  EXPECT_EQ(result.unfolded_variable_count, 8u);
}

TEST_F(LeafTest, PitchShrinksToPackedMinimum) {
  const LeafResult result = compact_leaf_cells(cells_, interfaces_, {"a"},
                                               {{"a", "a", 1, 1.0}}, CompactionRules::mosis());
  // Packed cell: bars at [0,10] and [16,26] (metal spacing 6); the next
  // instance's first bar needs 6 beyond x=26: λ = 32.
  ASSERT_EQ(result.pitches.size(), 1u);
  EXPECT_EQ(result.original_pitches[0], 60);
  EXPECT_EQ(result.pitches[0], 32);
  const auto& boxes = result.cells.at("a");
  EXPECT_EQ(boxes[0].box, Box(0, 0, 10, 4));
  EXPECT_EQ(boxes[1].box, Box(16, 0, 26, 4));
}

TEST_F(LeafTest, TiledResultIsDesignRuleClean) {
  // Instantiate the compacted cell at the compacted pitch several times and
  // DRC the assembly — the §6.3 promise that the new sample layout is valid.
  const LeafResult result = compact_leaf_cells(cells_, interfaces_, {"a"},
                                               {{"a", "a", 1, 1.0}}, CompactionRules::mosis());
  std::vector<LayerBox> assembled;
  for (int i = 0; i < 4; ++i) {
    for (const LayerBox& lb : result.cells.at("a")) {
      assembled.push_back({lb.layer, lb.box.translated({i * result.pitches[0], 0})});
    }
  }
  EXPECT_TRUE(check_design_rules(assembled, DesignRules::mosis_lambda()).empty());
}

TEST_F(LeafTest, CompactedLibraryRebuilds) {
  const std::vector<PitchSpec> specs = {{"a", "a", 1, 1.0}};
  const LeafResult result =
      compact_leaf_cells(cells_, interfaces_, {"a"}, specs, CompactionRules::mosis());
  CellTable new_cells;
  InterfaceTable new_interfaces;
  make_compacted_library(result, specs, new_cells, new_interfaces);
  EXPECT_TRUE(new_cells.contains("a"));
  EXPECT_EQ(new_interfaces.get("a", "a", 1).vector.x, result.pitches[0]);
}

TEST(LeafCompaction, TwoCellChainSharesConstraints) {
  // Figure 6.1's A^n B^m chain: three pitches (a-a, a-b, b-b).
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  Cell& b = cells.create("b");
  b.add_box(Layer::kMetal1, Box(0, 0, 20, 4));
  interfaces.declare("a", "a", 1, Interface{{40, 0}, Orientation::kNorth});
  interfaces.declare("a", "b", 1, Interface{{40, 0}, Orientation::kNorth});
  interfaces.declare("b", "b", 1, Interface{{50, 0}, Orientation::kNorth});

  const std::vector<PitchSpec> specs = {
      {"a", "a", 1, 10.0}, {"a", "b", 1, 1.0}, {"b", "b", 1, 10.0}};
  const LeafResult result =
      compact_leaf_cells(cells, interfaces, {"a", "b"}, specs, CompactionRules::mosis());
  // λ_aa = 10 + 6; λ_bb = 20 + 6; λ_ab = 10 + 6.
  EXPECT_EQ(result.pitches[0], 16);
  EXPECT_EQ(result.pitches[1], 16);
  EXPECT_EQ(result.pitches[2], 26);
}

TEST(LeafCompaction, Figure62PitchTradeoff) {
  // Figure 6.2's tradeoff, engineered so it is provable: the cell holds a
  // 24-wide top bar (y band [12,16], pinned to x = 0 as the cell's leftmost
  // content) and a 30-wide bottom bar (y band [0,4]) whose x offset `b` is
  // free. Interface 1 tiles with Δy = -12 so the next instance's TOP bar
  // lands in this instance's BOTTOM band: λ1 >= max(36, 36 + b). Interface
  // 2 tiles with Δy = +12 so the next instance's BOTTOM bar lands in the
  // TOP band: λ2 >= 30 - b (and >= 0). Shrinking λ1 wants b = 0; shrinking
  // λ2 wants b large — minimizing one pitch "can be minimized to a greater
  // extent at the cost of increasing" the other (§6.2).
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 12, 24, 16));  // top bar (leftmost: pinned)
  a.add_box(Layer::kMetal1, Box(10, 0, 40, 4));   // bottom bar, offset b = 10
  interfaces.declare("a", "a", 1, Interface{{48, -12}, Orientation::kNorth});
  interfaces.declare("a", "a", 2, Interface{{60, 12}, Orientation::kNorth});

  auto pitch_for = [&](double w1, double w2) {
    const std::vector<PitchSpec> specs = {{"a", "a", 1, w1}, {"a", "a", 2, w2}};
    return compact_leaf_cells(cells, interfaces, {"a"}, specs, CompactionRules::mosis())
        .pitches;
  };

  const auto favor1 = pitch_for(100.0, 1.0);
  const auto favor2 = pitch_for(1.0, 100.0);
  // favor1: b = 0 -> (λ1, λ2) = (36, 30). favor2: b = 30 -> (66, 0).
  EXPECT_EQ(favor1[0], 36);
  EXPECT_EQ(favor1[1], 30);
  EXPECT_EQ(favor2[0], 66);
  EXPECT_EQ(favor2[1], 0);
  // The general statement: each weighting wins its own pitch.
  EXPECT_LT(favor1[0], favor2[0]);
  EXPECT_LT(favor2[1], favor1[1]);
}

TEST(LeafCompaction, Validation) {
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));
  Cell& empty = cells.create("empty");
  (void)empty;
  Cell& shifted = cells.create("shifted");
  shifted.add_box(Layer::kMetal1, Box(-5, 0, 5, 4));

  interfaces.declare("a", "a", 1, Interface{{20, 0}, Orientation::kEast});
  interfaces.declare("a", "a", 2, Interface{{-20, 0}, Orientation::kNorth});
  interfaces.declare("shifted", "shifted", 1, Interface{{20, 0}, Orientation::kNorth});

  EXPECT_THROW(compact_leaf_cells(cells, interfaces, {"empty"}, {}, CompactionRules::mosis()),
               Error);
  EXPECT_THROW(compact_leaf_cells(cells, interfaces, {"a"}, {{"a", "a", 1, 1.0}},
                                  CompactionRules::mosis()),
               Error);  // rotated interface
  EXPECT_THROW(compact_leaf_cells(cells, interfaces, {"a"}, {{"a", "a", 2, 1.0}},
                                  CompactionRules::mosis()),
               Error);  // negative pitch
  EXPECT_THROW(compact_leaf_cells(cells, interfaces, {"shifted"},
                                  {{"shifted", "shifted", 1, 1.0}}, CompactionRules::mosis()),
               Error);  // negative local x
}

TEST(LeafCompaction, StretchableLayersShrink) {
  CellTable cells;
  InterfaceTable interfaces;
  Cell& a = cells.create("a");
  a.add_box(Layer::kMetal1, Box(0, 0, 10, 4));     // rigid device
  a.add_box(Layer::kPoly, Box(10, 1, 40, 3));      // stretchable bus
  interfaces.declare("a", "a", 1, Interface{{60, 0}, Orientation::kNorth});

  const LeafResult rigid = compact_leaf_cells(cells, interfaces, {"a"}, {{"a", "a", 1, 1.0}},
                                              CompactionRules::mosis());
  const LeafResult stretchy =
      compact_leaf_cells(cells, interfaces, {"a"}, {{"a", "a", 1, 1.0}},
                         CompactionRules::mosis(), 1e-3, {Layer::kPoly});
  EXPECT_LT(stretchy.pitches[0], rigid.pitches[0]);
}

}  // namespace
}  // namespace rsg::compact
