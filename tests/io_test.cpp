// Tests for the I/O layer: sample-layout parsing with by-example interface
// extraction (including the overlap-region label form of Fig 5.5), and the
// CIF / DEF / SVG writers.
#include <gtest/gtest.h>

#include <sstream>

#include "io/cif_writer.hpp"
#include "io/def_writer.hpp"
#include "io/sample_layout.hpp"
#include "io/svg_writer.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

constexpr const char* kSample = R"(
; two cells assembled to define interfaces by example
cell basic
  box metal1 0 0 40 8
  box poly 2 2 6 30
  point si 0 4
end

cell mask
  box implant 0 0 8 8
end

assembly
  inst a basic 0 0 N
  inst b basic 44 0 N
  inst m mask 10 2 N
  label 1 at 42 4      ; overlap of a's bbox [0..40+..] and b's? see test
  label 2 from a to m
end
)";

TEST(SampleLayout, ParsesCellsAndGeometry) {
  CellTable cells;
  InterfaceTable interfaces;
  // The positional label at (42,4) must lie inside exactly two instance
  // bboxes: a spans x in [0,40]... so widen b to overlap. Use explicit text
  // here instead:
  const char* text = R"(
cell basic
  box metal1 0 0 40 8
end
cell mask
  box implant 0 0 8 8
end
assembly
  inst a basic 0 0 N
  inst b basic 38 0 N
  inst m mask 10 2 N
  label 1 at 39 4
  label 2 from a to m
end
)";
  const SampleLayoutStats stats = load_sample_layout(text, cells, interfaces);
  EXPECT_EQ(stats.cells, 2u);
  EXPECT_EQ(stats.boxes, 2u);
  EXPECT_EQ(stats.assembly_instances, 3u);
  EXPECT_EQ(stats.interfaces_declared, 2u);

  // label 1: overlap of a and b; a declared first, so a is the reference.
  EXPECT_EQ(interfaces.get("basic", "basic", 1), (Interface{{38, 0}, Orientation::kNorth}));
  // label 2: explicit, from a to m.
  EXPECT_EQ(interfaces.get("basic", "mask", 2), (Interface{{10, 2}, Orientation::kNorth}));
}

TEST(SampleLayout, HierarchicalSampleCells) {
  CellTable cells;
  InterfaceTable interfaces;
  const char* text = R"(
cell leaf
  box metal1 0 0 4 4
end
cell composite
  box poly 0 0 20 4
  inst l1 leaf 0 0 N
  inst l2 leaf 16 0 MN
end
)";
  load_sample_layout(text, cells, interfaces);
  const Cell& composite = cells.get("composite");
  ASSERT_EQ(composite.instances().size(), 2u);
  EXPECT_EQ(composite.instances()[1].placement.orientation, Orientation::kMirrorNorth);
  EXPECT_EQ(composite.flattened_box_count(), 3u);
}

TEST(SampleLayout, OrientationInInterfaceExtraction) {
  CellTable cells;
  InterfaceTable interfaces;
  const char* text = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst left a 0 0 S
  inst right a 20 6 E
  label 3 from left to right
end
)";
  load_sample_layout(text, cells, interfaces);
  const Interface i = interfaces.get("a", "a", 3);
  // O = S^-1 ∘ E = S ∘ E = W;  V = S(20,6) = (-20,-6).
  EXPECT_EQ(i.orientation, Orientation::kWest);
  EXPECT_EQ(i.vector, (Vec{-20, -6}));
}

TEST(SampleLayout, ErrorPaths) {
  CellTable cells;
  InterfaceTable interfaces;
  EXPECT_THROW(load_sample_layout("garbage here", cells, interfaces), Error);

  CellTable cells2;
  InterfaceTable interfaces2;
  EXPECT_THROW(load_sample_layout("cell a\n  box metal1 0 0\nend", cells2, interfaces2), Error);

  CellTable cells3;
  InterfaceTable interfaces3;
  // Positional label inside only one instance.
  const char* bad_label = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst x a 0 0 N
  label 1 at 5 2
end
)";
  EXPECT_THROW(load_sample_layout(bad_label, cells3, interfaces3), Error);

  CellTable cells4;
  InterfaceTable interfaces4;
  // Unknown instance in explicit label.
  const char* bad_ref = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst x a 0 0 N
  inst y a 20 0 N
  label 1 from x to z
end
)";
  EXPECT_THROW(load_sample_layout(bad_ref, cells4, interfaces4), Error);

  CellTable cells5;
  InterfaceTable interfaces5;
  EXPECT_THROW(load_sample_layout("cell a\n  box metal1 0 0 4 4", cells5, interfaces5), Error);
}

TEST(SampleLayout, FullSampleParses) {
  CellTable cells;
  InterfaceTable interfaces;
  // The header sample: label 1 at (42,4) overlaps a [0..40] and b [44..]?
  // It does not — expect a clean diagnostic rather than silence.
  EXPECT_THROW(load_sample_layout(kSample, cells, interfaces), Error);
}

class WriterTest : public ::testing::Test {
 protected:
  WriterTest() {
    Cell& leaf = cells_.create("leaf");
    leaf.add_box(Layer::kMetal1, Box(0, 0, 5, 3));  // odd center: needs x2 scale
    leaf.add_label("pin", {1, 1});
    Cell& top = cells_.create("top");
    top.add_box(Layer::kPoly, Box(0, 0, 2, 2));
    top.add_instance(&leaf, Placement{{10, 0}, Orientation::kWest});
    top.add_instance(&leaf, Placement{{20, 0}, Orientation::kMirrorNorth});
  }
  CellTable cells_;
};

TEST_F(WriterTest, CifContainsHierarchyAndTransforms) {
  const std::string cif = cif_to_string(cells_.get("top"));
  EXPECT_NE(cif.find("DS 1 1 2;"), std::string::npos);
  EXPECT_NE(cif.find("9 leaf;"), std::string::npos);
  EXPECT_NE(cif.find("9 top;"), std::string::npos);
  // Box: doubled coords — width 10, height 6, center (5,3).
  EXPECT_NE(cif.find("B 10 6 5 3;"), std::string::npos);
  // West call: R 0 1; mirrored call: MX.
  EXPECT_NE(cif.find("R 0 1"), std::string::npos);
  EXPECT_NE(cif.find("MX"), std::string::npos);
  // Leaf defined once, called twice.
  EXPECT_EQ(cif.find("9 leaf;"), cif.rfind("9 leaf;"));
  // Ends with a top-level call and E.
  EXPECT_NE(cif.find("C 2 T 0 0;\nE\n"), std::string::npos);
}

TEST_F(WriterTest, DefIsFlatSortedAndDeterministic) {
  const std::string def = def_to_string(cells_.get("top"));
  EXPECT_NE(def.find("DEF top 3"), std::string::npos);
  EXPECT_EQ(def, def_to_string(cells_.get("top")));
  // Flattened leaf under West at (10,0): box (0,0,5,3) -> (-3,0)..(0,5)
  // shifted: (7,0)..(10,5).
  EXPECT_NE(def.find("RECT metal1 7 0 10 5"), std::string::npos);
}

TEST_F(WriterTest, SvgMentionsEveryLayerDrawn) {
  std::ostringstream out;
  write_svg(out, cells_.get("top"));
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("rect"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 boxes + 2 labels-as-text.
  EXPECT_NE(svg.find("<text"), std::string::npos);
}

}  // namespace
}  // namespace rsg
