// Tests for the I/O layer: sample-layout parsing with by-example interface
// extraction (including the overlap-region label form of Fig 5.5), the
// CIF / DEF / SVG writers, and the streaming contracts — the legacy
// whole-layout entry points must be byte-identical to a manually driven
// stream writer, and the pull-parse → stream-write path must hold its
// bounded-buffer guarantee on a 100k-box field.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>

#include "compact/synth_design.hpp"
#include "io/cif_reader.hpp"
#include "io/cif_writer.hpp"
#include "io/def_writer.hpp"
#include "io/sample_layout.hpp"
#include "io/svg_writer.hpp"
#include "layout/flatten.hpp"
#include "pla/pla_builder.hpp"
#include "rsg/generator.hpp"
#include "support/error.hpp"

namespace rsg {
namespace {

constexpr const char* kSample = R"(
; two cells assembled to define interfaces by example
cell basic
  box metal1 0 0 40 8
  box poly 2 2 6 30
  point si 0 4
end

cell mask
  box implant 0 0 8 8
end

assembly
  inst a basic 0 0 N
  inst b basic 44 0 N
  inst m mask 10 2 N
  label 1 at 42 4      ; overlap of a's bbox [0..40+..] and b's? see test
  label 2 from a to m
end
)";

TEST(SampleLayout, ParsesCellsAndGeometry) {
  CellTable cells;
  InterfaceTable interfaces;
  // The positional label at (42,4) must lie inside exactly two instance
  // bboxes: a spans x in [0,40]... so widen b to overlap. Use explicit text
  // here instead:
  const char* text = R"(
cell basic
  box metal1 0 0 40 8
end
cell mask
  box implant 0 0 8 8
end
assembly
  inst a basic 0 0 N
  inst b basic 38 0 N
  inst m mask 10 2 N
  label 1 at 39 4
  label 2 from a to m
end
)";
  const SampleLayoutStats stats = load_sample_layout(text, cells, interfaces);
  EXPECT_EQ(stats.cells, 2u);
  EXPECT_EQ(stats.boxes, 2u);
  EXPECT_EQ(stats.assembly_instances, 3u);
  EXPECT_EQ(stats.interfaces_declared, 2u);

  // label 1: overlap of a and b; a declared first, so a is the reference.
  EXPECT_EQ(interfaces.get("basic", "basic", 1), (Interface{{38, 0}, Orientation::kNorth}));
  // label 2: explicit, from a to m.
  EXPECT_EQ(interfaces.get("basic", "mask", 2), (Interface{{10, 2}, Orientation::kNorth}));
}

TEST(SampleLayout, HierarchicalSampleCells) {
  CellTable cells;
  InterfaceTable interfaces;
  const char* text = R"(
cell leaf
  box metal1 0 0 4 4
end
cell composite
  box poly 0 0 20 4
  inst l1 leaf 0 0 N
  inst l2 leaf 16 0 MN
end
)";
  load_sample_layout(text, cells, interfaces);
  const Cell& composite = cells.get("composite");
  ASSERT_EQ(composite.instances().size(), 2u);
  EXPECT_EQ(composite.instances()[1].placement.orientation, Orientation::kMirrorNorth);
  EXPECT_EQ(composite.flattened_box_count(), 3u);
}

TEST(SampleLayout, OrientationInInterfaceExtraction) {
  CellTable cells;
  InterfaceTable interfaces;
  const char* text = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst left a 0 0 S
  inst right a 20 6 E
  label 3 from left to right
end
)";
  load_sample_layout(text, cells, interfaces);
  const Interface i = interfaces.get("a", "a", 3);
  // O = S^-1 ∘ E = S ∘ E = W;  V = S(20,6) = (-20,-6).
  EXPECT_EQ(i.orientation, Orientation::kWest);
  EXPECT_EQ(i.vector, (Vec{-20, -6}));
}

TEST(SampleLayout, ErrorPaths) {
  CellTable cells;
  InterfaceTable interfaces;
  EXPECT_THROW(load_sample_layout("garbage here", cells, interfaces), Error);

  CellTable cells2;
  InterfaceTable interfaces2;
  EXPECT_THROW(load_sample_layout("cell a\n  box metal1 0 0\nend", cells2, interfaces2), Error);

  CellTable cells3;
  InterfaceTable interfaces3;
  // Positional label inside only one instance.
  const char* bad_label = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst x a 0 0 N
  label 1 at 5 2
end
)";
  EXPECT_THROW(load_sample_layout(bad_label, cells3, interfaces3), Error);

  CellTable cells4;
  InterfaceTable interfaces4;
  // Unknown instance in explicit label.
  const char* bad_ref = R"(
cell a
  box metal1 0 0 10 4
end
assembly
  inst x a 0 0 N
  inst y a 20 0 N
  label 1 from x to z
end
)";
  EXPECT_THROW(load_sample_layout(bad_ref, cells4, interfaces4), Error);

  CellTable cells5;
  InterfaceTable interfaces5;
  EXPECT_THROW(load_sample_layout("cell a\n  box metal1 0 0 4 4", cells5, interfaces5), Error);
}

TEST(SampleLayout, FullSampleParses) {
  CellTable cells;
  InterfaceTable interfaces;
  // The header sample: label 1 at (42,4) overlaps a [0..40] and b [44..]?
  // It does not — expect a clean diagnostic rather than silence.
  EXPECT_THROW(load_sample_layout(kSample, cells, interfaces), Error);
}

class WriterTest : public ::testing::Test {
 protected:
  WriterTest() {
    Cell& leaf = cells_.create("leaf");
    leaf.add_box(Layer::kMetal1, Box(0, 0, 5, 3));  // odd center: needs x2 scale
    leaf.add_label("pin", {1, 1});
    Cell& top = cells_.create("top");
    top.add_box(Layer::kPoly, Box(0, 0, 2, 2));
    top.add_instance(&leaf, Placement{{10, 0}, Orientation::kWest});
    top.add_instance(&leaf, Placement{{20, 0}, Orientation::kMirrorNorth});
  }
  CellTable cells_;
};

TEST_F(WriterTest, CifContainsHierarchyAndTransforms) {
  const std::string cif = cif_to_string(cells_.get("top"));
  EXPECT_NE(cif.find("DS 1 1 2;"), std::string::npos);
  EXPECT_NE(cif.find("9 leaf;"), std::string::npos);
  EXPECT_NE(cif.find("9 top;"), std::string::npos);
  // Box: doubled coords — width 10, height 6, center (5,3).
  EXPECT_NE(cif.find("B 10 6 5 3;"), std::string::npos);
  // West call: R 0 1; mirrored call: MX.
  EXPECT_NE(cif.find("R 0 1"), std::string::npos);
  EXPECT_NE(cif.find("MX"), std::string::npos);
  // Leaf defined once, called twice.
  EXPECT_EQ(cif.find("9 leaf;"), cif.rfind("9 leaf;"));
  // Ends with a top-level call and E.
  EXPECT_NE(cif.find("C 2 T 0 0;\nE\n"), std::string::npos);
}

TEST_F(WriterTest, DefIsFlatSortedAndDeterministic) {
  const std::string def = def_to_string(cells_.get("top"));
  EXPECT_NE(def.find("DEF top 3"), std::string::npos);
  EXPECT_EQ(def, def_to_string(cells_.get("top")));
  // Flattened leaf under West at (10,0): box (0,0,5,3) -> (-3,0)..(0,5)
  // shifted: (7,0)..(10,5).
  EXPECT_NE(def.find("RECT metal1 7 0 10 5"), std::string::npos);
}

TEST_F(WriterTest, SvgMentionsEveryLayerDrawn) {
  std::ostringstream out;
  write_svg(out, cells_.get("top"));
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("rect"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 boxes + 2 labels-as-text.
  EXPECT_NE(svg.find("<text"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming contracts.
// ---------------------------------------------------------------------------

// Pull-parses CIF text and forwards every event straight into a
// CifStreamWriter — the pure streaming path with no materialized layout.
// Returns the re-emitted text; `parser_peak`/`writer_peak` report the
// buffer high-water marks for bounded-buffer assertions.
std::string stream_reemit_cif(const std::string& cif, std::size_t* parser_peak = nullptr,
                              std::size_t* writer_peak = nullptr) {
  std::istringstream in(cif);
  std::ostringstream out;
  CifPullParser parser(in);
  CifStreamWriter writer(out);
  CifPullParser::Event event;
  int root = 0;
  writer.begin();
  while (parser.next(event)) {
    switch (event.kind) {
      case CifPullParser::EventKind::kBeginSymbol:
        break;  // the writer opens the cell on its 9-record
      case CifPullParser::EventKind::kSymbolName:
        root = writer.begin_cell(event.name);
        break;
      case CifPullParser::EventKind::kBox:
        writer.emit_box(event.layer, event.box);
        break;
      case CifPullParser::EventKind::kLabel:
        writer.emit_label(event.name, event.at);
        break;
      case CifPullParser::EventKind::kCall:
        // The writer's end() re-emits the single top-level root call.
        if (event.top_level) {
          root = event.callee;
        } else {
          writer.emit_call(event.callee, event.placement);
        }
        break;
      case CifPullParser::EventKind::kEndSymbol:
        writer.end_cell();
        break;
      case CifPullParser::EventKind::kEnd:
        writer.end(root);
        break;
    }
  }
  if (parser_peak != nullptr) *parser_peak = parser.peak_buffer_bytes();
  if (writer_peak != nullptr) *writer_peak = writer.peak_buffer_bytes();
  return out.str();
}

// Drives the DEF/SVG stream writers by hand with the same flatten/sort
// steps their legacy entry points perform and checks byte identity.
void expect_stream_writers_match_legacy(const Cell& top) {
  {
    std::ostringstream legacy;
    write_def(legacy, top);
    std::vector<LayerBox> boxes = flatten_boxes(top);
    std::sort(boxes.begin(), boxes.end(), [](const LayerBox& a, const LayerBox& b) {
      return std::tuple(static_cast<int>(a.layer), a.box.lo.x, a.box.lo.y, a.box.hi.x,
                        a.box.hi.y) < std::tuple(static_cast<int>(b.layer), b.box.lo.x,
                                                 b.box.lo.y, b.box.hi.x, b.box.hi.y);
    });
    std::ostringstream streamed;
    DefStreamWriter writer(streamed);
    writer.begin(top.name(), boxes.size());
    for (const LayerBox& lb : boxes) writer.emit_box(lb);
    writer.end();
    EXPECT_EQ(streamed.str(), legacy.str()) << top.name();
  }
  {
    std::ostringstream legacy;
    write_svg(legacy, top);
    FlattenResult flat = flatten(top);
    std::stable_sort(flat.boxes.begin(), flat.boxes.end(),
                     [](const LayerBox& a, const LayerBox& b) {
                       return svg_layer_rank(a.layer) < svg_layer_rank(b.layer);
                     });
    std::ostringstream streamed;
    SvgStreamWriter writer(streamed);
    writer.begin(top.name(), top.bounding_box());
    for (const LayerBox& lb : flat.boxes) writer.emit_box(lb);
    for (const FlatLabel& fl : flat.labels) writer.emit_label(fl.label.text, fl.at);
    writer.end();
    EXPECT_EQ(streamed.str(), legacy.str()) << top.name();
  }
}

// The five seed designs: every layout the repo can generate end-to-end.
// For each, the streamed CIF re-emission and the hand-driven DEF/SVG
// stream writers must be byte-identical to the legacy entry points.
TEST(StreamingIdentity, FiveSeedDesigns) {
  std::vector<std::pair<std::string, const Cell*>> designs;

  Generator mult;
  designs.emplace_back("mult", mult.run_files(designs_path("mult.sample"),
                                              designs_path("mult.rsg"),
                                              designs_path("mult.par"))
                                   .top);
  Generator ram;
  designs.emplace_back("ram", ram.run_files(designs_path("ram.sample"), designs_path("ram.rsg"),
                                            designs_path("ram.par"))
                                  .top);
  Generator pla_gen;
  designs.emplace_back("pla", pla::generate_pla(pla_gen, pla::TruthTable::parse(
                                                             "10-1 101\n"
                                                             "01-0 110\n"
                                                             "--11 011\n"
                                                             "0--- 100\n"))
                                  .top);
  Generator folded_gen;
  designs.emplace_back("folded",
                       pla::generate_folded_pla(folded_gen, pla::TruthTable::parse(
                                                                "10-- 1010\n"
                                                                "01-- 0010\n"
                                                                "--10 1000\n"
                                                                "--01 0101\n"
                                                                "11-- 0001\n"
                                                                "0011 0100\n"))
                           .top);
  Generator decoder_gen;
  designs.emplace_back("decoder", pla::generate_decoder(decoder_gen, 3).top);

  for (const auto& [name, top] : designs) {
    ASSERT_NE(top, nullptr) << name;
    const std::string legacy_cif = cif_to_string(*top);
    EXPECT_EQ(stream_reemit_cif(legacy_cif), legacy_cif) << name;
    expect_stream_writers_match_legacy(*top);
  }
}

// The memory bound, at the scale the bench acceptance runs: pull-parse a
// 100k-box field and re-emit it; the parser may hold one read chunk plus
// one command, the writer at most its fixed capacity.
TEST(StreamingIdentity, BoundedBuffersOn100kField) {
  const compact::SynthField field = compact::make_grid_field_of_size(100000);
  std::ostringstream generated;
  CifStreamWriter writer(generated);
  writer.begin();
  const int id = writer.begin_cell("field");
  for (const LayerBox& lb : field.boxes) writer.emit_box(lb.layer, lb.box);
  writer.end_cell();
  writer.end(id);
  EXPECT_LE(writer.peak_buffer_bytes(), writer.buffer_capacity());

  const std::string cif = generated.str();
  EXPECT_GT(cif.size(), 1000000u);  // a genuinely multi-MB layout
  std::size_t parser_peak = 0, writer_peak = 0;
  const std::string reemitted = stream_reemit_cif(cif, &parser_peak, &writer_peak);
  EXPECT_EQ(reemitted, cif);
  EXPECT_LE(parser_peak, CifPullParser::Options{}.chunk_bytes + 4096);
  EXPECT_LE(writer_peak, BoundedTextSink::kDefaultCapacity);
}

// Pathological inputs must stay bounded too: a record larger than the
// sink's capacity passes straight through instead of growing the buffer.
TEST(StreamingIdentity, OversizedRecordBypassesBuffer) {
  std::ostringstream out;
  BoundedTextSink sink(out, 16);
  sink.append("0123456789");
  const std::string big(64, 'x');
  sink.append(big);
  sink.append("tail");
  sink.flush();
  EXPECT_EQ(out.str(), "0123456789" + big + "tail");
  EXPECT_LE(sink.peak_bytes(), 16u);
  EXPECT_EQ(sink.bytes_written(), 78u);
}

}  // namespace
}  // namespace rsg
