// Parser tests: S-expressions, indexed variables (Appendix A's indexed and
// 2indexed variables), and error reporting with source locations.
#include "lang/parser.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace rsg::lang {
namespace {

TEST(Parser, Atoms) {
  EXPECT_EQ(parse_form("42").kind, Expr::Kind::kNumber);
  EXPECT_EQ(parse_form("42").number, 42);
  EXPECT_EQ(parse_form("\"hi\"").kind, Expr::Kind::kString);
  EXPECT_EQ(parse_form("\"hi\"").text, "hi");
  EXPECT_EQ(parse_form("foo").kind, Expr::Kind::kVar);
  EXPECT_EQ(parse_form("foo").text, "foo");
}

TEST(Parser, SimpleCall) {
  const Expr e = parse_form("(+ 1 (- 2 3))");
  ASSERT_EQ(e.kind, Expr::Kind::kList);
  ASSERT_EQ(e.elements.size(), 3u);
  EXPECT_TRUE(e.elements[0].is_var("+"));
  EXPECT_EQ(e.elements[2].kind, Expr::Kind::kList);
}

TEST(Parser, IndexedVariableWithLiteralIndex) {
  const Expr e = parse_form("l.3");
  ASSERT_EQ(e.kind, Expr::Kind::kVar);
  EXPECT_EQ(e.text, "l");
  ASSERT_EQ(e.indices.size(), 1u);
  EXPECT_EQ(e.indices[0].number, 3);
}

TEST(Parser, IndexedVariableWithVariableIndex) {
  const Expr e = parse_form("cl.ysize");
  EXPECT_EQ(e.text, "cl");
  ASSERT_EQ(e.indices.size(), 1u);
  EXPECT_TRUE(e.indices[0].is_var("ysize"));
}

TEST(Parser, IndexedVariableWithExpressionIndex) {
  const Expr e = parse_form("l.(- i 1)");
  ASSERT_EQ(e.indices.size(), 1u);
  EXPECT_EQ(e.indices[0].kind, Expr::Kind::kList);
  EXPECT_TRUE(e.indices[0].elements[0].is_var("-"));
}

TEST(Parser, TwoIndexedVariable) {
  const Expr e = parse_form("grid.i.(+ j 1)");
  EXPECT_EQ(e.text, "grid");
  ASSERT_EQ(e.indices.size(), 2u);
  EXPECT_TRUE(e.indices[0].is_var("i"));
  EXPECT_EQ(e.indices[1].kind, Expr::Kind::kList);
}

TEST(Parser, ThreeIndicesRejected) {
  EXPECT_THROW(parse_form("a.1.2.3"), LangError);
}

TEST(Parser, EmptyListAllowed) {
  // Empty formals lists: (defun f () ...).
  const Expr e = parse_form("()");
  EXPECT_EQ(e.kind, Expr::Kind::kList);
  EXPECT_TRUE(e.elements.empty());
}

TEST(Parser, ProgramParsesMultipleForms) {
  const Program p = parse_program("(a 1) (b 2) 7");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2].number, 7);
}

TEST(Parser, AppendixBShapedMacroParses) {
  // A fragment with the exact syntactic features of the thesis's multiplier
  // design file (Appendix B).
  const char* source = R"((macro mcell (xsize ysize xloc yloc)
    (locals c temp)
    (mk_instance c basiccell)
    (cond ((= (+ ysize 1) yloc) (connect c (mk_instance temp typei) tiinum))
          (true (cond ((= ysize yloc) (connect c (mk_instance temp type2) t2inum))
                      (true (connect c (mk_instance temp typei) tiinum)))))
    (do (i 2 (+ 1 i) (> i xsize))
        (assign l.i (mcell xsize ysize i currentline))
        (connect (subcell l.(- i 1) c) (subcell l.i c) hinum))))";
  const Expr e = parse_form(source);
  EXPECT_TRUE(e.elements[0].is_var("macro"));
  EXPECT_TRUE(e.elements[1].is_var("mcell"));
  EXPECT_EQ(e.elements[2].elements.size(), 4u);  // formals
  EXPECT_TRUE(e.elements[3].elements[0].is_var("locals"));
}

TEST(Parser, ErrorsCarryLocations) {
  try {
    parse_program("(foo\n   (bar");
    FAIL() << "expected LangError";
  } catch (const LangError& e) {
    EXPECT_EQ(e.line(), 2);  // the innermost unclosed paren
  }
  EXPECT_THROW(parse_program(")"), LangError);
  EXPECT_THROW(parse_program("a. "), LangError);
  EXPECT_THROW(parse_form("1 2"), Error);  // trailing input
}

}  // namespace
}  // namespace rsg::lang
