// Interpreter tests: arithmetic, control flow, functions vs environment-
// returning macros (§4.2), indexed variables, and the graph primitives.
#include "lang/interp.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "lang/parser.hpp"
#include "support/error.hpp"

namespace rsg::lang {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  InterpTest() : interp_(cells_, interfaces_, graph_, &output_) {
    Cell& a = cells_.create("cella");
    a.add_box(Layer::kMetal1, Box(0, 0, 10, 10));
    Cell& b = cells_.create("cellb");
    b.add_box(Layer::kPoly, Box(0, 0, 8, 8));
    interfaces_.declare("cella", "cella", 1, Interface{{12, 0}, Orientation::kNorth});
    interfaces_.declare("cella", "cellb", 2, Interface{{0, 12}, Orientation::kNorth});
  }

  Value run(const std::string& source) { return interp_.run(parse_program(source)); }

  CellTable cells_;
  InterfaceTable interfaces_;
  ConnectivityGraph graph_;
  std::ostringstream output_;
  Interpreter interp_;
};

TEST_F(InterpTest, Arithmetic) {
  EXPECT_EQ(run("(+ 1 2 3)").as_integer(), 6);
  EXPECT_EQ(run("(- 10 3 2)").as_integer(), 5);
  EXPECT_EQ(run("(- 4)").as_integer(), -4);
  EXPECT_EQ(run("(* 3 4)").as_integer(), 12);
  EXPECT_EQ(run("(// 7 2)").as_integer(), 3);
  EXPECT_EQ(run("(mod 7 2)").as_integer(), 1);
  EXPECT_EQ(run("(mod -1 4)").as_integer(), 3);  // mathematical modulus
  EXPECT_THROW(run("(// 1 0)"), LangError);
  EXPECT_THROW(run("(mod 1 0)"), LangError);
}

TEST_F(InterpTest, ComparisonsAndLogic) {
  EXPECT_TRUE(run("(= 3 3)").as_boolean());
  EXPECT_FALSE(run("(= 3 4)").as_boolean());
  EXPECT_TRUE(run("(/= 3 4)").as_boolean());
  EXPECT_TRUE(run("(> 4 3)").as_boolean());
  EXPECT_TRUE(run("(< 3 4)").as_boolean());
  EXPECT_TRUE(run("(>= 4 4)").as_boolean());
  EXPECT_TRUE(run("(<= 4 4)").as_boolean());
  EXPECT_TRUE(run("(and true 1 2)").truthy());
  EXPECT_FALSE(run("(and true 0)").truthy());
  EXPECT_TRUE(run("(or 0 false 5)").truthy());
  EXPECT_FALSE(run("(or 0 false)").truthy());
  EXPECT_TRUE(run("(not 0)").as_boolean());
}

TEST_F(InterpTest, EqualityComparesStringsAndSymbols) {
  EXPECT_TRUE(run("(= \"x\" \"x\")").as_boolean());
  EXPECT_FALSE(run("(= \"x\" \"y\")").as_boolean());
}

TEST_F(InterpTest, CondEvaluatesFirstTruthyClause) {
  EXPECT_EQ(run("(cond ((= 1 2) 10) ((= 1 1) 20) (true 30))").as_integer(), 20);
  EXPECT_EQ(run("(cond ((= 1 2) 10) (true 30))").as_integer(), 30);
  EXPECT_TRUE(run("(cond ((= 1 2) 10))").is_nil());
}

TEST_F(InterpTest, DoLoopTestsExitBeforeBody) {
  EXPECT_EQ(run("(assign sum 0) (do (i 1 (+ i 1) (> i 4)) (assign sum (+ sum i))) sum")
                .as_integer(),
            10);
  // Exit true immediately: body never runs.
  EXPECT_EQ(run("(assign t 0) (do (i 2 (+ i 1) (> i 1)) (assign t 99)) t").as_integer(), 0);
}

TEST_F(InterpTest, AssignAndSetqAreSynonyms) {
  EXPECT_EQ(run("(setq x 5) (assign y (+ x 2)) y").as_integer(), 7);
}

TEST_F(InterpTest, IndexedVariablesMangleWithEvaluatedIndices) {
  EXPECT_EQ(run("(assign i 3) (assign l.i 42) l.3").as_integer(), 42);
  EXPECT_EQ(run("(assign l.(+ 1 1) 7) l.2").as_integer(), 7);
  EXPECT_EQ(run("(assign g.1.2 9) (assign i 1) g.i.(+ i 1)").as_integer(), 9);
}

TEST_F(InterpTest, FunctionsReturnLastValue) {
  EXPECT_EQ(run("(defun sq (x) (locals) (* x x)) (sq 6)").as_integer(), 36);
  // fmin from Appendix B.
  EXPECT_EQ(run("(defun fmin (x y) (locals) (cond ((> x y) y) (true x))) (fmin 5 3)")
                .as_integer(),
            3);
}

TEST_F(InterpTest, RecursionWorks) {
  EXPECT_EQ(run("(defun fact (n) (locals) (cond ((= n 0) 1) (true (* n (fact (- n 1)))))) "
                "(fact 10)")
                .as_integer(),
            3628800);
}

TEST_F(InterpTest, RunawayRecursionIsCaught) {
  EXPECT_THROW(run("(defun loop (n) (locals) (loop (+ n 1))) (loop 0)"), LangError);
}

TEST_F(InterpTest, MacrosReturnTheirEnvironment) {
  const Value v = run("(macro mpair (x) (locals y) (assign y (* x 2)) 999) (mpair 21)");
  ASSERT_TRUE(v.is_environment());
  const Value* y = v.as_environment()->find("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->as_integer(), 42);
  EXPECT_EQ(v.as_environment()->find("x")->as_integer(), 21);
}

TEST_F(InterpTest, SubcellSelectsFromReturnedEnvironment) {
  EXPECT_EQ(run("(macro mpair (x) (locals y) (assign y (* x 2))) "
                "(assign e (mpair 21)) (subcell e y)")
                .as_integer(),
            42);
  // Indexed second argument: indices evaluate in the CALLER's frame.
  EXPECT_EQ(run("(macro mrow () (locals) (assign r.1 10) (assign r.2 20)) "
                "(assign e (mrow)) (assign i 2) (subcell e r.i)")
                .as_integer(),
            20);
}

TEST_F(InterpTest, SubcellOnMissingVariableFails) {
  EXPECT_THROW(run("(macro mp () (locals)) (subcell (mp) nothere)"), LangError);
  EXPECT_THROW(run("(subcell 5 x)"), LangError);
}

TEST_F(InterpTest, MacroNamesMustStartWithM) {
  EXPECT_THROW(run("(macro pair (x) (locals))"), LangError);
  EXPECT_THROW(run("(defun mfoo (x) (locals))"), LangError);
}

TEST_F(InterpTest, BuiltinsCannotBeRedefined) {
  EXPECT_THROW(run("(defun connect (x) (locals))"), LangError);
}

TEST_F(InterpTest, UnknownCalleeAndUnboundVariableErrors) {
  EXPECT_THROW(run("(nosuchthing 1)"), LangError);
  EXPECT_THROW(run("nosuchvar"), LangError);
  EXPECT_THROW(run("(+ 1 \"x\")"), LangError);
}

TEST_F(InterpTest, ArityIsChecked) {
  EXPECT_THROW(run("(defun f (x y) (locals) x) (f 1)"), LangError);
  EXPECT_THROW(run("(mod 3)"), LangError);
}

TEST_F(InterpTest, PrintWritesToOutputStream) {
  run("(print 1 (+ 1 1) \"three\")");
  EXPECT_EQ(output_.str(), "1 2 three\n");
}

TEST_F(InterpTest, GraphPrimitivesBuildAndExpand) {
  const Value v = run(
      "(mk_instance x cella)"
      "(mk_instance y cella)"
      "(connect x y 1)"
      "(mk_instance z cellb)"
      "(connect x z 2)"
      "(mk_cell \"trio\" x)");
  ASSERT_TRUE(v.is_cell());
  EXPECT_EQ(v.as_cell()->name(), "trio");
  EXPECT_EQ(v.as_cell()->instances().size(), 3u);
  EXPECT_TRUE(cells_.contains("trio"));
}

TEST_F(InterpTest, MkInstanceBindsItsVariable) {
  const Value v = run("(mk_instance n cella) n");
  EXPECT_TRUE(v.is_node());
  EXPECT_EQ(v.as_node()->cell->name(), "cella");
}

TEST_F(InterpTest, ArrayBuiltinBuildsAChainEnvironment) {
  const Value v = run("(array cella 4 1)");
  ASSERT_TRUE(v.is_environment());
  EXPECT_EQ(v.as_environment()->find("count")->as_integer(), 4);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NE(v.as_environment()->find("c." + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(graph_.node_count(), 4u);
  EXPECT_EQ(graph_.edge_count(), 3u);
  EXPECT_THROW(run("(array cella 0 1)"), LangError);
}

TEST_F(InterpTest, DeclareInterfaceInheritsForMacrocells) {
  run("(mk_instance x cella)"
      "(mk_instance y cella)"
      "(connect x y 1)"
      "(mk_cell \"pair\" x)"
      "(declare_interface pair pair 1 y x 1)");
  // The new pair/pair interface #1 chains pairs with the spacing inherited
  // from the inner cella/cella interface: the second pair's x sits 12 right
  // of the first pair's y (which is at 12), so the pair pitch is 24.
  const Interface i = interfaces_.get("pair", "pair", 1);
  EXPECT_EQ(i.vector, (Vec{24, 0}));
  EXPECT_EQ(i.orientation, Orientation::kNorth);
}

TEST_F(InterpTest, DeclareInterfaceValidatesOwnership) {
  EXPECT_THROW(
      run("(mk_instance x cella)"
          "(mk_instance y cella)"
          "(connect x y 1)"
          "(declare_interface cella cella 1 x y 1)"),  // x not expanded yet
      LangError);
}

TEST_F(InterpTest, StatsCountFramesAndCalls) {
  run("(defun f (x) (locals) x) (f 1) (f 2) (f 3)");
  EXPECT_EQ(interp_.stats().procedure_calls, 3u);
  EXPECT_GE(interp_.stats().frames_created, 3u);
}

}  // namespace
}  // namespace rsg::lang
